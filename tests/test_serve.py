"""Tests for the HTTP serving surface and the one-shot CLI.

Covers the other half of the acceptance bar: for every registered
experiment the response served **over HTTP** is bit-identical to the
direct ``run_*`` call (JSON round-trips every double exactly), plus the
error paths (400 on bad requests, 404 on unknown paths) and the
``repro.cli`` command in both in-process and ``--url`` modes.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.api import MixerService, encode
from repro.cli import main as cli_main
from repro.core.config import MixerDesign
from repro.serve import SpecRequestHandler, create_server, serve_in_thread

from api_test_helpers import (
    EXPERIMENT_NAMES,
    echo_registry,
    open_gate,
    small_request,
)


@pytest.fixture(scope="module")
def server():
    server = create_server()
    thread = serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


@contextmanager
def echo_server(**server_options):
    """A short-lived server over the controllable echo registry.

    The response cache is off so a gated request always reaches the runner
    (a cache hit would skip the gate and deadlock-proof nothing).
    """
    service = MixerService(registry=echo_registry(), response_cache=False)
    server = create_server(service=service, **server_options)
    thread = serve_in_thread(server)
    try:
        host, port = server.server_address[:2]
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def echo_payload(value: float, **grid) -> dict:
    return {"experiment": "echo", "grid": {"value": value, **grid}}


def poll_job(base_url: str, job_id: str) -> dict:
    return get_json(f"{base_url}/v1/jobs/{job_id}")["job"]


def wait_for(predicate, timeout_s: float = 30.0, interval_s: float = 0.005):
    """Poll ``predicate`` until it returns a truthy value (or time out)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not met within "
                         f"{timeout_s}s: {predicate}")


class TestEndpoints:
    def test_health(self, base_url):
        assert get_json(base_url + "/v1/health") == {"status": "ok"}

    def test_experiments_listing(self, base_url):
        from repro.api import API_VERSION
        payload = get_json(base_url + "/v1/experiments")
        assert payload["api_version"] == API_VERSION
        names = sorted(entry["name"] for entry in payload["experiments"])
        assert names == EXPERIMENT_NAMES
        by_name = {entry["name"]: entry for entry in payload["experiments"]}
        # The listing carries enough metadata that a client need not
        # hard-code experiment shapes: result schema + full default grid.
        pareto = by_name["yield_pareto"]
        assert pareto["result_schema"] == "ParetoOptResult"
        assert "objectives" in pareto["default_grid"]
        assert "strategy" in pareto["default_grid"]

    def test_api_version_mismatch_is_structured_400(self, base_url):
        from repro.api import API_VERSION
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base_url + "/v1/spec",
                      {"api_version": 2, "experiment": "power_budget"})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error_kind"] == "api_version_mismatch"
        assert body["client_api_version"] == 2
        assert body["server_api_version"] == API_VERSION
        assert "api_version mismatch" in body["error"]

    def test_missing_api_version_is_accepted(self, base_url):
        # Hand-written payloads without the field keep working (read as
        # current); only an explicit mismatch is refused.
        payload = post_json(base_url + "/v1/spec",
                            {"experiment": "power_budget"})
        assert payload["experiment"] == "power_budget"

    def test_unknown_path_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base_url + "/v1/nope")
        assert excinfo.value.code == 404

    def test_bad_experiment_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base_url + "/v1/spec", {"experiment": "fig99"})
        assert excinfo.value.code == 400
        assert "unknown experiment" in json.loads(excinfo.value.read())["error"]

    def test_malformed_body_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/v1/spec", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_bad_batch_shape_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base_url + "/v1/batch", {"request": []})
        assert excinfo.value.code == 400


class TestHttpBitIdentity:
    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_served_response_matches_direct_run(self, name, base_url,
                                                direct_payloads):
        payload = post_json(base_url + "/v1/spec",
                            small_request(name).to_dict())
        expected = json.loads(json.dumps(direct_payloads(name)))
        assert payload["result"] == expected
        assert payload["result"] == direct_payloads(name)
        assert payload["design_fingerprint"] == MixerDesign().fingerprint()

    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_repeat_over_http_is_served_from_cache(self, name, base_url):
        first = post_json(base_url + "/v1/spec",
                          small_request(name).to_dict())
        again = post_json(base_url + "/v1/spec",
                          small_request(name).to_dict())
        assert again["source"] == "memory-cache"
        assert again["result"] == first["result"]

    def test_batch_endpoint_matches_singles(self, base_url):
        designs = [MixerDesign(),
                   MixerDesign().with_gain_setting(1.05)]
        requests = [small_request("table1", design).to_dict()
                    for design in designs]
        batch = post_json(base_url + "/v1/batch", {"requests": requests})
        singles = [post_json(base_url + "/v1/spec", request)
                   for request in requests]
        assert [r["result"] for r in batch["responses"]] == \
            [r["result"] for r in singles]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_NAMES:
            assert name in out

    def test_run_in_process_report(self, capsys):
        assert cli_main(["run", "power_budget"]) == 0
        out = capsys.readouterr().out
        assert "Power budget" in out and "computed" in out

    def test_run_json_output_matches_direct(self, capsys):
        assert cli_main(["run", "tia_response", "--grid", "points=16",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.experiments import run_tia_response
        assert payload["result"] == encode(run_tia_response(points=16))

    def test_run_over_http(self, base_url, capsys):
        assert cli_main(["run", "power_budget", "--url", base_url]) == 0
        out = capsys.readouterr().out
        assert "Power budget" in out

    def test_grid_override_parse_error(self, capsys):
        assert cli_main(["run", "fig8", "--grid", "points"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert cli_main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_design_file_round_trip(self, tmp_path, capsys):
        design = MixerDesign().with_gain_setting(1.1)
        design_file = tmp_path / "design.json"
        design_file.write_text(json.dumps(design.to_dict()),
                               encoding="utf-8")
        assert cli_main(["run", "power_budget", "--design",
                         str(design_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design_fingerprint"] == design.fingerprint()

    def test_run_as_job_over_http(self, base_url, capsys):
        assert cli_main(["run", "power_budget", "--url", base_url,
                         "--job", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["experiment"] == "power_budget"
        assert "job job-" in captured.err

    def test_job_flag_requires_url(self, capsys):
        assert cli_main(["run", "power_budget", "--job"]) == 2
        assert "--job needs --url" in capsys.readouterr().err

    def test_metrics_command(self, base_url, capsys):
        assert cli_main(["metrics", "--url", base_url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "/v1/spec" in payload["requests"]
        assert payload["jobs"]["workers"] >= 1


class TestConcurrentClients:
    def test_parallel_mixed_traffic_is_bit_identical(self, base_url,
                                                     direct_payloads):
        # 16 clients hammer one server with interleaved experiments; every
        # response must still match the direct in-process run exactly.
        names = ["power_budget", "table1", "tia_response", "fig8"] * 4

        def one_client(name: str) -> tuple[str, dict]:
            return name, post_json(base_url + "/v1/spec",
                                   small_request(name).to_dict())

        with ThreadPoolExecutor(max_workers=8) as clients:
            served = list(clients.map(one_client, names))
        assert len(served) == len(names)
        for name, payload in served:
            assert payload["result"] == direct_payloads(name)

    def test_concurrent_batch_and_spec_clients(self, base_url,
                                               direct_payloads):
        batch_body = {"requests": [small_request("table1").to_dict(),
                                   small_request("power_budget").to_dict()]}

        def batch_client() -> list[dict]:
            payload = post_json(base_url + "/v1/batch", batch_body)
            return [entry["result"] for entry in payload["responses"]]

        def spec_client() -> dict:
            return post_json(base_url + "/v1/spec",
                             small_request("tia_response").to_dict())["result"]

        with ThreadPoolExecutor(max_workers=6) as clients:
            batches = [clients.submit(batch_client) for _ in range(3)]
            specs = [clients.submit(spec_client) for _ in range(3)]
            for future in batches:
                assert future.result() == [direct_payloads("table1"),
                                           direct_payloads("power_budget")]
            for future in specs:
                assert future.result() == direct_payloads("tia_response")


class TestHttpErrorMapping:
    def test_malformed_content_length_is_400(self, base_url):
        # urllib cannot send a non-numeric Content-Length; go raw.
        host, port = base_url.removeprefix("http://").split(":")
        raw = (b"POST /v1/spec HTTP/1.1\r\n"
               b"Host: test\r\n"
               b"Content-Length: twelve\r\n"
               b"\r\n")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(raw)
            chunks = []
            while chunk := sock.recv(65536):
                chunks.append(chunk)
            reply = b"".join(chunks).decode("utf-8", "replace")
        status_line, _, rest = reply.partition("\r\n")
        assert status_line.split()[1] == "400"
        body = rest.split("\r\n\r\n", 1)[1]
        assert "malformed Content-Length" in json.loads(body)["error"]

    def test_runner_crash_is_500(self):
        with echo_server() as (_server, url):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(url + "/v1/spec",
                          echo_payload(1.0, fail=True))
            assert excinfo.value.code == 500
            error = json.loads(excinfo.value.read())["error"]
            assert "injected runner failure" in error

    @staticmethod
    def _batch_bodies(drop_nth: int) -> list[dict]:
        designs = [MixerDesign(),
                   MixerDesign().with_gain_setting(1.05),
                   MixerDesign().with_gain_setting(1.10)]
        return [{"experiment": "echo_batch", "design": design.to_dict(),
                 "grid": {"drop_nth": drop_nth}} for design in designs]

    def test_batch_member_failure_is_500_not_shortened_list(self):
        with echo_server() as (_server, url):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(url + "/v1/batch",
                          {"requests": self._batch_bodies(drop_nth=1)})
            assert excinfo.value.code == 500
            error = json.loads(excinfo.value.read())["error"]
            assert "returned no result" in error

    def test_batch_order_preserved_over_http(self):
        with echo_server() as (_server, url):
            bodies = self._batch_bodies(drop_nth=-1)
            payload = post_json(url + "/v1/batch", {"requests": bodies})
            served = [entry["design_fingerprint"]
                      for entry in payload["responses"]]
            expected = [MixerDesign.from_dict(body["design"]).fingerprint()
                        for body in bodies]
            assert served == expected


class TestLoadShedding:
    def test_saturated_queue_sheds_429_with_retry_after(self):
        with echo_server(job_workers=1, queue_limit=1) as (_server, url):
            gate = open_gate("http-shed")
            try:
                running = post_json(url + "/v1/jobs", {
                    "request": echo_payload(1.0, gate="http-shed")})["job"]
                wait_for(lambda: poll_job(url, running["id"])["state"]
                         == "running")
                queued = post_json(url + "/v1/jobs", {
                    "request": echo_payload(2.0)})["job"]
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    post_json(url + "/v1/jobs",
                              {"request": echo_payload(3.0)})
                assert excinfo.value.code == 429
                assert excinfo.value.headers["Retry-After"] == "1"
                assert "queue is full" in \
                    json.loads(excinfo.value.read())["error"]
            finally:
                gate.set()
            for job in (running, queued):
                wait_for(lambda job=job: poll_job(url, job["id"])["state"]
                         == "done")
            metrics = get_json(url + "/v1/metrics")
            assert metrics["load_shed_total"] == 1
            assert metrics["jobs"]["shed"] == 1
            assert metrics["jobs"]["completed"] == 2


class TestJobsHttp:
    def test_unknown_job_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base_url + "/v1/jobs/job-999999-cafecafe")
        assert excinfo.value.code == 404

    def test_job_lifecycle_with_midrun_progress(self):
        with echo_server() as (_server, url):
            gate = open_gate("http-progress")
            submitted = post_json(url + "/v1/jobs", {
                "request": echo_payload(7.0, gate="http-progress")})["job"]
            assert submitted["state"] in ("queued", "running")
            assert "result" not in submitted
            try:
                midrun = wait_for(
                    lambda: (lambda job: job if job["progress"] else None)(
                        poll_job(url, submitted["id"])))
                assert midrun["state"] == "running"
                assert midrun["progress"]["stage"] == "echo"
                assert "result" not in midrun
                listing = get_json(url + "/v1/jobs")["jobs"]
                assert [submitted["id"]] == [job["id"] for job in listing]
                assert all("result" not in job for job in listing)
            finally:
                gate.set()
            done = wait_for(
                lambda: (lambda job: job if job["state"] == "done" else None)(
                    poll_job(url, submitted["id"])))
            assert done["result"]["result"]["fields"]["value"] == 7.0
            assert done["result"]["experiment"] == "echo"
            assert done["running_s"] >= 0.0

    def test_yield_opt_job_streams_iteration_history(self, base_url):
        from api_test_helpers import ACTIVE_TARGETS
        grid = {"population": 2, "iterations": 3, "num_samples": 2,
                "targets": ACTIVE_TARGETS}
        submitted = post_json(base_url + "/v1/jobs", {
            "request": {"experiment": "yield_opt", "grid": grid}})["job"]
        frames: list[dict] = []
        job = submitted
        deadline = time.monotonic() + 120
        while job["state"] in ("queued", "running"):
            assert time.monotonic() < deadline, "yield_opt job never finished"
            job = poll_job(base_url, submitted["id"])
            if job["progress"].get("stage") == "yield_opt":
                frames.append(dict(job["progress"], state=job["state"]))
            time.sleep(0.002)
        assert job["state"] == "done"
        final = job["result"]["result"]["fields"]
        # history crosses the wire as a tagged ndarray; unwrap to compare
        # against the plain-list progress frames.
        final_history = final["history"]["__ndarray__"]
        # Intermediate iteration history was visible *before* completion:
        # at least one running-state frame carried a strict prefix of the
        # final history.
        partial = [frame for frame in frames
                   if frame["state"] == "running"
                   and frame["iteration"] < grid["iterations"]]
        assert partial, "no intermediate yield_opt progress observed"
        for frame in partial:
            assert frame["history"] == final_history[:frame["iteration"]]
        last = frames[-1]
        assert last["iteration"] == grid["iterations"]
        assert last["history"] == final_history
        assert last["best_yield"] == final["best_yield"]

    def test_yield_pareto_job_streams_front_snapshots(self, base_url):
        from api_test_helpers import ACTIVE_TARGETS
        grid = {"population": 2, "iterations": 3, "num_samples": 2,
                "targets": ACTIVE_TARGETS}
        submitted = post_json(base_url + "/v1/jobs", {
            "request": {"experiment": "yield_pareto", "grid": grid}})["job"]
        frames: list[dict] = []
        job = submitted
        deadline = time.monotonic() + 120
        while job["state"] in ("queued", "running"):
            assert time.monotonic() < deadline, \
                "yield_pareto job never finished"
            job = poll_job(base_url, submitted["id"])
            if job["progress"].get("stage") == "pareto_opt":
                frames.append(dict(job["progress"], state=job["state"]))
            time.sleep(0.002)
        assert job["state"] == "done"
        final = job["result"]["result"]["fields"]
        # front_history is JSON-ready on both sides (snapshots are built
        # strict-JSON), so progress frames compare directly to the result.
        final_history = final["front_history"]
        assert len(final_history) == grid["iterations"]
        partial = [frame for frame in frames
                   if frame["state"] == "running"
                   and frame["iteration"] < grid["iterations"]]
        assert partial, "no intermediate pareto_opt progress observed"
        for frame in partial:
            # A poller always sees a prefix of the final snapshot history.
            assert frame["front_history"] == \
                final_history[:frame["iteration"]]
            assert frame["front_size"] == len(frame["front_history"][-1])
        last = frames[-1]
        assert last["iteration"] == grid["iterations"]
        assert last["front_history"] == final_history
        assert last["strategy"] == "shrinking_span"


class TestMetricsEndpoint:
    def test_snapshot_shape_and_counters(self, base_url):
        post_json(base_url + "/v1/spec",
                  small_request("power_budget").to_dict())
        snapshot = get_json(base_url + "/v1/metrics")
        assert snapshot["uptime_s"] > 0.0
        spec = snapshot["requests"]["/v1/spec"]
        assert spec["count"] >= 1
        assert spec["by_status"].get("200", 0) >= 1
        assert spec["latency_le_s"]["+Inf"] == spec["count"]
        assert spec["max_s"] >= 0.0
        assert snapshot["experiments"]["power_budget"] >= 1
        assert snapshot["jobs"]["completed"] >= 1
        cache = snapshot["response_cache"]
        assert cache["stores"] >= 1
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_unknown_paths_collapse_to_one_label(self, base_url):
        for suffix in ("/nope", "/also/nope"):
            with pytest.raises(urllib.error.HTTPError):
                get_json(base_url + suffix)
        snapshot = get_json(base_url + "/v1/metrics")
        unknown = snapshot["requests"]["(unknown)"]
        assert unknown["count"] >= 2
        assert unknown["errors"] >= 2


class TestDoubleResponseGuard:
    def test_fail_after_headers_sent_closes_connection(self):
        class FakeHandler:
            _headers_sent = True
            close_connection = False
            logged: list[str] = []

            def log_error(self, format, *args):  # noqa: A002
                self.logged.append(format % args)

        fake = FakeHandler()
        # The fake has no send_response/wfile: any attempt to write a
        # second response would blow up with AttributeError.
        status = SpecRequestHandler._fail(fake, 500, "mid-write failure")
        assert status == 500
        assert fake.close_connection is True
        assert any("mid-write failure" in line for line in fake.logged)

    def test_fail_before_headers_sends_single_error_response(self):
        sent: list[tuple[int, str]] = []

        class FakeHandler:
            _headers_sent = False
            close_connection = False

            def _send_error_json(self, status, message, extra=None):
                sent.append((status, message))
                return status

        status = SpecRequestHandler._fail(FakeHandler(), 400, "bad input")
        assert status == 400
        assert sent == [(400, "bad input")]
