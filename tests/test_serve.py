"""Tests for the HTTP serving surface and the one-shot CLI.

Covers the other half of the acceptance bar: for every registered
experiment the response served **over HTTP** is bit-identical to the
direct ``run_*`` call (JSON round-trips every double exactly), plus the
error paths (400 on bad requests, 404 on unknown paths) and the
``repro.cli`` command in both in-process and ``--url`` modes.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api import encode
from repro.cli import main as cli_main
from repro.core.config import MixerDesign
from repro.serve import create_server, serve_in_thread

from api_test_helpers import EXPERIMENT_NAMES, small_request


@pytest.fixture(scope="module")
def server():
    server = create_server()
    thread = serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


class TestEndpoints:
    def test_health(self, base_url):
        assert get_json(base_url + "/v1/health") == {"status": "ok"}

    def test_experiments_listing(self, base_url):
        payload = get_json(base_url + "/v1/experiments")
        names = sorted(entry["name"] for entry in payload["experiments"])
        assert names == EXPERIMENT_NAMES

    def test_unknown_path_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base_url + "/v1/nope")
        assert excinfo.value.code == 404

    def test_bad_experiment_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base_url + "/v1/spec", {"experiment": "fig99"})
        assert excinfo.value.code == 400
        assert "unknown experiment" in json.loads(excinfo.value.read())["error"]

    def test_malformed_body_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/v1/spec", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_bad_batch_shape_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base_url + "/v1/batch", {"request": []})
        assert excinfo.value.code == 400


class TestHttpBitIdentity:
    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_served_response_matches_direct_run(self, name, base_url,
                                                direct_payloads):
        payload = post_json(base_url + "/v1/spec",
                            small_request(name).to_dict())
        expected = json.loads(json.dumps(direct_payloads(name)))
        assert payload["result"] == expected
        assert payload["result"] == direct_payloads(name)
        assert payload["design_fingerprint"] == MixerDesign().fingerprint()

    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_repeat_over_http_is_served_from_cache(self, name, base_url):
        first = post_json(base_url + "/v1/spec",
                          small_request(name).to_dict())
        again = post_json(base_url + "/v1/spec",
                          small_request(name).to_dict())
        assert again["source"] == "memory-cache"
        assert again["result"] == first["result"]

    def test_batch_endpoint_matches_singles(self, base_url):
        designs = [MixerDesign(),
                   MixerDesign().with_gain_setting(1.05)]
        requests = [small_request("table1", design).to_dict()
                    for design in designs]
        batch = post_json(base_url + "/v1/batch", {"requests": requests})
        singles = [post_json(base_url + "/v1/spec", request)
                   for request in requests]
        assert [r["result"] for r in batch["responses"]] == \
            [r["result"] for r in singles]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_NAMES:
            assert name in out

    def test_run_in_process_report(self, capsys):
        assert cli_main(["run", "power_budget"]) == 0
        out = capsys.readouterr().out
        assert "Power budget" in out and "computed" in out

    def test_run_json_output_matches_direct(self, capsys):
        assert cli_main(["run", "tia_response", "--grid", "points=16",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.experiments import run_tia_response
        assert payload["result"] == encode(run_tia_response(points=16))

    def test_run_over_http(self, base_url, capsys):
        assert cli_main(["run", "power_budget", "--url", base_url]) == 0
        out = capsys.readouterr().out
        assert "Power budget" in out

    def test_grid_override_parse_error(self, capsys):
        assert cli_main(["run", "fig8", "--grid", "points"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert cli_main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_design_file_round_trip(self, tmp_path, capsys):
        design = MixerDesign().with_gain_setting(1.1)
        design_file = tmp_path / "design.json"
        design_file.write_text(json.dumps(design.to_dict()),
                               encoding="utf-8")
        assert cli_main(["run", "power_budget", "--design",
                         str(design_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design_fingerprint"] == design.fingerprint()
