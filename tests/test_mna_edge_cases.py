"""Edge-case tests for the MNA assembly engine (`repro.circuit.mna`).

The happy paths (dividers, cascades, AC magnitude checks) live in
``test_circuit_engine.py``; these tests pin the corners that keep the
engine robust but were previously untested:

* ``gmin`` regularisation of floating/singular nodes (standard SPICE
  practice) and the least-squares fallback when it is disabled;
* silent dropping of stamps against the ground node;
* complex-dtype assembly for AC analysis, including the branch equations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.elements import (
    CurrentSource,
    ResistorElement,
    VoltageSource,
)
from repro.circuit.mna import MnaSystem, SolutionView
from repro.circuit.netlist import GROUND, Circuit


def _two_node_circuit() -> Circuit:
    """R1 from n1 to ground plus a second node n2 only a capacitor touches.

    ``n2`` is floating at DC (the capacitor contributes no DC conductance),
    which is exactly the singular case gmin exists to regularise.
    """
    from repro.circuit.elements import CapacitorElement

    circuit = Circuit("floating-node")
    circuit.add(CurrentSource("I1", GROUND, "n1", dc=1e-3))
    circuit.add(ResistorElement("R1", "n1", GROUND, 1e3))
    circuit.add(CapacitorElement("C1", "n1", "n2", 1e-12))
    return circuit


class TestGminRegularisation:
    def test_gmin_lands_on_every_node_diagonal(self):
        circuit = _two_node_circuit()
        system = MnaSystem(circuit, gmin=1e-9)
        for index in range(system.num_nodes):
            assert system.matrix[index, index] >= 1e-9

    def test_floating_node_solves_cleanly_with_gmin(self):
        circuit = _two_node_circuit()
        system = MnaSystem(circuit, gmin=1e-12)
        guess = SolutionView(circuit, np.zeros(system.size))
        for element in circuit:
            element.stamp_dc(system, guess)
        solution = SolutionView(circuit, system.solve())
        # The driven node sees I*R; the floating node leaks to 0 through gmin.
        assert solution.voltage("n1") == pytest.approx(1.0, rel=1e-6)
        assert abs(solution.voltage("n2")) < 1e-6
        assert np.all(np.isfinite(solution.vector))

    def test_gmin_zero_falls_back_to_least_squares(self):
        circuit = _two_node_circuit()
        system = MnaSystem(circuit, gmin=0.0)
        guess = SolutionView(circuit, np.zeros(system.size))
        for element in circuit:
            element.stamp_dc(system, guess)
        # The matrix is singular (n2 has an all-zero row at DC), but solve()
        # must still return a finite least-squares solution, not raise.
        solution = SolutionView(circuit, system.solve())
        assert np.all(np.isfinite(solution.vector))
        assert solution.voltage("n1") == pytest.approx(1.0, rel=1e-6)

    def test_gmin_does_not_bias_well_conditioned_answers(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("V1", "in", GROUND, dc=1.0))
        circuit.add(ResistorElement("R1", "in", "out", 1e3))
        circuit.add(ResistorElement("R2", "out", GROUND, 1e3))
        system = MnaSystem(circuit, gmin=1e-12)
        guess = SolutionView(circuit, np.zeros(system.size))
        for element in circuit:
            element.stamp_dc(system, guess)
        solution = SolutionView(circuit, system.solve())
        assert solution.voltage("out") == pytest.approx(0.5, rel=1e-9)


class TestGroundStampDropping:
    def test_conductance_to_ground_touches_only_the_node_diagonal(self):
        circuit = Circuit("one-r")
        circuit.add(ResistorElement("R1", "n1", GROUND, 100.0))
        system = MnaSystem(circuit, gmin=0.0)
        system.add_conductance("n1", GROUND, 0.01)
        assert system.matrix[0, 0] == pytest.approx(0.01)
        # Nothing else may have been written.
        matrix = system.matrix.copy()
        matrix[0, 0] = 0.0
        assert np.count_nonzero(matrix) == 0

    def test_current_into_ground_is_dropped(self):
        circuit = Circuit("one-r")
        circuit.add(ResistorElement("R1", "n1", GROUND, 100.0))
        system = MnaSystem(circuit, gmin=0.0)
        system.add_current(GROUND, 1.0)
        assert np.count_nonzero(system.rhs) == 0
        system.add_current("n1", 2.0)
        assert system.rhs[0] == pytest.approx(2.0)

    def test_vccs_with_grounded_terminals(self):
        circuit = Circuit("gm")
        circuit.add(ResistorElement("Rin", "a", GROUND, 1e3))
        circuit.add(ResistorElement("Rout", "b", GROUND, 1e3))
        system = MnaSystem(circuit, gmin=0.0)
        # Output and input each have one grounded terminal: only the single
        # (out+, in+) entry may be written.
        system.add_vccs("b", GROUND, "a", GROUND, 1e-3)
        b, a = system.node_index("b"), system.node_index("a")
        assert system.matrix[b, a] == pytest.approx(1e-3)
        matrix = system.matrix.copy()
        matrix[b, a] = 0.0
        assert np.count_nonzero(matrix) == 0

    def test_voltage_branch_with_grounded_negative_node(self):
        circuit = Circuit("vsrc")
        circuit.add(VoltageSource("V1", "n1", GROUND, dc=2.5))
        system = MnaSystem(circuit, gmin=0.0)
        system.stamp_voltage_branch("V1", "n1", GROUND, 2.5)
        branch = system.branch_index("V1")
        node = system.node_index("n1")
        assert system.matrix[node, branch] == pytest.approx(1.0)
        assert system.matrix[branch, node] == pytest.approx(1.0)
        assert system.rhs[branch] == pytest.approx(2.5)
        # The ground row/column must not exist anywhere in the stamp.
        assert np.count_nonzero(system.matrix) == 2

    def test_ground_node_index_is_sentinel(self):
        circuit = _two_node_circuit()
        system = MnaSystem(circuit, gmin=0.0)
        assert system.node_index(GROUND) == -1


class TestComplexAcAssembly:
    def test_complex_dtype_propagates_to_matrix_and_rhs(self):
        circuit = Circuit("rc")
        circuit.add(VoltageSource("V1", "in", GROUND, ac=1.0))
        circuit.add(ResistorElement("R1", "in", "out", 1e3))
        system = MnaSystem(circuit, dtype=complex, gmin=0.0)
        assert system.matrix.dtype == np.complex128
        assert system.rhs.dtype == np.complex128

    def test_rc_low_pass_at_pole_frequency(self):
        resistance, capacitance = 1e3, 1e-9
        pole_hz = 1.0 / (2.0 * np.pi * resistance * capacitance)
        circuit = Circuit("rc")
        circuit.add(VoltageSource("V1", "in", GROUND, ac=1.0))
        circuit.add(ResistorElement("R1", "in", "out", resistance))
        system = MnaSystem(circuit, dtype=complex, gmin=0.0)
        system.stamp_voltage_branch("V1", "in", GROUND, 1.0 + 0.0j)
        system.add_conductance("in", "out", 1.0 / resistance)
        admittance = 1j * 2.0 * np.pi * pole_hz * capacitance
        system.add_conductance("out", GROUND, admittance)
        solution = SolutionView(circuit, system.solve())
        out = solution.voltage("out")
        assert isinstance(out, complex)
        # At the pole: magnitude 1/sqrt(2), phase -45 degrees.
        assert abs(out) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-9)
        assert np.degrees(np.angle(out)) == pytest.approx(-45.0, abs=1e-6)

    def test_branch_current_is_complex_in_ac(self):
        circuit = Circuit("r-load")
        circuit.add(VoltageSource("V1", "in", GROUND, ac=1.0))
        circuit.add(ResistorElement("R1", "in", GROUND, 50.0))
        system = MnaSystem(circuit, dtype=complex, gmin=0.0)
        dc = SolutionView(circuit, np.zeros(system.size))
        for element in circuit:
            element.stamp_ac(system, 2.0 * np.pi * 1e6, dc)
        solution = SolutionView(circuit, system.solve())
        current = solution.branch_current("V1")
        assert isinstance(current, complex)
        assert abs(current) == pytest.approx(1.0 / 50.0, rel=1e-9)
