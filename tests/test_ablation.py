"""Tests for the ablation experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    format_report,
    run_ablation,
    run_corner_sweep,
    run_degeneration_ablation,
    run_load_flatness_ablation,
    run_tia_gating_ablation,
)


class TestDegenerationAblation:
    def test_degeneration_buys_linearity_and_costs_gain(self, design):
        result = run_degeneration_ablation(design)
        assert result.linearity_benefit_db > 1.0
        assert result.gain_cost_db > 1.0
        assert result.iip3_strong_dbm > result.iip3_nominal_dbm
        assert result.strong_resistance_ohm > result.nominal_resistance_ohm

    def test_rejects_non_increasing_scale(self, design):
        with pytest.raises(ValueError):
            run_degeneration_ablation(design, strong_scale=0.5)


class TestLoadFlatnessAblation:
    def test_transmission_gate_is_flatter_than_single_nmos(self, design):
        result = run_load_flatness_ablation(design)
        assert result.transmission_gate_flatness < result.single_nmos_flatness
        assert result.improvement_ratio > 2.0


class TestTiaGatingAblation:
    def test_gating_saves_the_tia_branch(self, design):
        result = run_tia_gating_ablation(design)
        assert result.power_saving_mw == pytest.approx(
            design.tia_supply_current * design.vdd * 1e3)
        assert result.active_power_without_gating_mw > \
            result.active_power_with_gating_mw


class TestCornerSweep:
    def test_three_corners_preserve_mode_ordering(self, design):
        points = run_corner_sweep(design)
        assert [p.corner for p in points] == ["nominal", "slow", "fast"]
        for point in points:
            assert point.active_gain_db > point.passive_gain_db
            assert point.active_nf_db < point.passive_nf_db

    def test_fast_corner_has_more_gain_than_slow(self, design):
        points = {p.corner: p for p in run_corner_sweep(design)}
        assert points["fast"].active_gain_db > points["slow"].active_gain_db


class TestAggregate:
    def test_run_ablation_and_report(self, design):
        result = run_ablation(design)
        report = format_report(result)
        assert "degeneration" in report
        assert "TIA gating" in report
        assert "corner" in report
