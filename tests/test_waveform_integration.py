"""Integration tests: the waveform-level mixer model measured like hardware.

These are the cross-checks that give the analytic specs teeth: the same
quantities (conversion gain, IIP3, P1dB, IIP2) are re-measured from sampled
waveforms through FFTs and must agree with both the analytic model and the
paper's numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MixerMode, PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.rf.compression import measure_compression_point
from repro.rf.conversion_gain import measure_conversion_gain
from repro.rf.twotone import TwoToneSource, fit_intercept_point, sweep_two_tone

LO = 2.4e9
RF = 2.405e9
IF = 5e6


@pytest.fixture(scope="module", params=[MixerMode.ACTIVE, MixerMode.PASSIVE],
                ids=["active", "passive"])
def mode(request):
    return request.param


@pytest.fixture(scope="module")
def device(mode, design, sample_rate):
    from repro.core.reconfigurable_mixer import ReconfigurableMixer

    mixer = ReconfigurableMixer(design, mode)
    return mixer.waveform_device(sample_rate, lo_frequency=LO,
                                 rf_band_frequency=RF)


@pytest.fixture(scope="module")
def mixer(mode, design):
    from repro.core.reconfigurable_mixer import ReconfigurableMixer

    return ReconfigurableMixer(design, mode)


class TestWaveformConversionGain:
    def test_measured_gain_matches_analytic(self, device, mixer, sample_rate,
                                            num_samples):
        measured = measure_conversion_gain(device, RF, IF, -40.0, sample_rate,
                                           num_samples)
        assert measured == pytest.approx(mixer.conversion_gain_db(RF, IF), abs=0.5)

    def test_measured_gain_matches_paper(self, device, mixer, sample_rate,
                                         num_samples):
        targets = (PAPER_TARGETS_ACTIVE if mixer.mode is MixerMode.ACTIVE
                   else PAPER_TARGETS_PASSIVE)
        measured = measure_conversion_gain(device, RF, IF, -40.0, sample_rate,
                                           num_samples)
        assert measured == pytest.approx(targets.conversion_gain_db, abs=1.0)

    def test_gain_independent_of_small_signal_level(self, device, sample_rate,
                                                    num_samples):
        g1 = measure_conversion_gain(device, RF, IF, -50.0, sample_rate, num_samples)
        g2 = measure_conversion_gain(device, RF, IF, -35.0, sample_rate, num_samples)
        assert g1 == pytest.approx(g2, abs=0.2)

    def test_conversion_gain_guard_against_large_input(self, device, sample_rate,
                                                       num_samples):
        with pytest.raises(ValueError):
            measure_conversion_gain(device, RF, IF, -5.0, sample_rate, num_samples)


class TestWaveformLinearity:
    def test_two_tone_iip3_matches_paper(self, device, mixer, sample_rate,
                                         num_samples):
        targets = (PAPER_TARGETS_ACTIVE if mixer.mode is MixerMode.ACTIVE
                   else PAPER_TARGETS_PASSIVE)
        powers = np.arange(-45.0, -23.0, 3.0)
        source = TwoToneSource(2.405e9, 2.407e9, float(powers[0]))
        sweep = sweep_two_tone(device, source, powers, sample_rate, num_samples,
                               lo_frequency=LO)
        fit = fit_intercept_point(powers,
                                  [r.fundamental_output_dbm for r in sweep],
                                  [r.im3_output_dbm for r in sweep])
        assert fit.intercept_input_dbm == pytest.approx(targets.iip3_dbm, abs=2.5)
        assert fit.intercept_input_dbm == pytest.approx(mixer.iip3_dbm(), abs=2.0)

    def test_compression_point_close_to_analytic(self, device, mixer, sample_rate,
                                                 num_samples):
        result = measure_compression_point(device, RF,
                                           np.arange(-40.0, -6.0, 2.0),
                                           sample_rate, num_samples,
                                           output_frequency=IF)
        assert result.compression_found
        assert result.input_p1db_dbm == pytest.approx(mixer.p1db_dbm(), abs=2.5)

    def test_output_never_exceeds_swing_limit(self, device, mixer, sample_rate,
                                              num_samples, design):
        from repro.rf.signal import Tone, sample_times

        tone = Tone(RF, 0.0)  # a deliberately huge input (0 dBm)
        times = sample_times(sample_rate, num_samples)
        output = device(tone.waveform(times))
        assert np.max(np.abs(output)) <= design.output_swing_limit * 1.0001


class TestWaveformModeComparison:
    def test_passive_beats_active_on_iip3_by_over_10db(self, design, sample_rate,
                                                       num_samples):
        from repro.core.reconfigurable_mixer import ReconfigurableMixer

        powers = np.arange(-45.0, -25.0, 4.0)
        intercepts = {}
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            mixer = ReconfigurableMixer(design, mode)
            dev = mixer.waveform_device(sample_rate, lo_frequency=LO,
                                        rf_band_frequency=RF)
            source = TwoToneSource(2.405e9, 2.407e9, float(powers[0]))
            sweep = sweep_two_tone(dev, source, powers, sample_rate, num_samples,
                                   lo_frequency=LO)
            fit = fit_intercept_point(powers,
                                      [r.fundamental_output_dbm for r in sweep],
                                      [r.im3_output_dbm for r in sweep])
            intercepts[mode] = fit.intercept_input_dbm
        assert intercepts[MixerMode.PASSIVE] > intercepts[MixerMode.ACTIVE] + 10.0

    def test_waveform_device_validates_inputs(self, design):
        from repro.core.reconfigurable_mixer import ReconfigurableMixer

        mixer = ReconfigurableMixer(design, MixerMode.ACTIVE)
        with pytest.raises(ValueError):
            mixer.waveform_device(sample_rate=-1.0)
        with pytest.raises(ValueError):
            mixer.waveform_device(sample_rate=1e9, lo_frequency=2.4e9)
