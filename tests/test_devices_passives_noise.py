"""Unit tests for passive components and noise sources."""

from __future__ import annotations

import math

import pytest

from repro.devices.noise import (
    CompositeNoise,
    FlickerNoise,
    ShotNoise,
    ThermalNoise,
)
from repro.devices.passives import Capacitor, Inductor, Resistor, feedback_impedance


class TestResistor:
    def test_impedance_is_real_and_flat(self):
        r = Resistor(1e3)
        assert r.impedance(1e3) == r.impedance(1e9) == 1e3 + 0j

    def test_noise_density_matches_4ktr(self):
        r = Resistor(50.0)
        assert r.noise_voltage_density() == pytest.approx(0.91e-9, rel=0.02)

    def test_zero_resistance_has_no_voltage_noise(self):
        assert Resistor(0.0).noise_voltage_density() == 0.0
        assert Resistor(0.0).noise_current_density() == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Resistor(-1.0)


class TestCapacitor:
    def test_impedance_magnitude_halves_per_octave(self):
        c = Capacitor(1e-12)
        z1 = abs(c.impedance(1e9))
        z2 = abs(c.impedance(2e9))
        assert z1 / z2 == pytest.approx(2.0)

    def test_dc_is_open(self):
        assert math.isinf(Capacitor(1e-12).impedance(0.0).real)

    def test_pole_frequency(self):
        c = Capacitor(2.3e-12)
        assert c.pole_frequency(3.7e3) == pytest.approx(
            1.0 / (2.0 * math.pi * 3.7e3 * 2.3e-12))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Capacitor(0.0)


class TestInductor:
    def test_impedance_grows_with_frequency(self):
        ind = Inductor(1e-9)
        assert abs(ind.impedance(2e9)) > abs(ind.impedance(1e9))

    def test_quality_factor(self):
        lossless = Inductor(1e-9)
        lossy = Inductor(1e-9, series_resistance=2.0)
        assert math.isinf(lossless.quality_factor(1e9))
        assert lossy.quality_factor(1e9) == pytest.approx(
            2.0 * math.pi * 1e9 * 1e-9 / 2.0)

    def test_resonance(self):
        ind = Inductor(1e-9)
        f0 = ind.resonance_with(1e-12)
        assert f0 == pytest.approx(1.0 / (2.0 * math.pi * math.sqrt(1e-21)))


class TestFeedbackImpedance:
    def test_reduces_to_resistance_at_dc(self):
        assert feedback_impedance(3.7e3, 2.3e-12, 0.0) == pytest.approx(3.7e3)

    def test_minus_3db_at_pole(self):
        r, c = 3.7e3, 2.3e-12
        pole = 1.0 / (2.0 * math.pi * r * c)
        assert abs(feedback_impedance(r, c, pole)) == pytest.approx(
            r / math.sqrt(2.0), rel=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            feedback_impedance(0.0, 1e-12, 1e6)


class TestNoiseSources:
    def test_thermal_noise_is_white(self):
        source = ThermalNoise(resistance=1e3)
        assert source.voltage_psd(1e3) == pytest.approx(source.voltage_psd(1e9))

    def test_thermal_from_gm(self):
        source = ThermalNoise.from_gm(gm=15e-3, gamma=1.1)
        assert source.resistance == pytest.approx(1.1 / 15e-3)

    def test_flicker_noise_slope(self):
        source = FlickerNoise(k_flicker=1e-12)
        assert source.voltage_psd(1e3) / source.voltage_psd(1e4) == pytest.approx(10.0)

    def test_flicker_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            FlickerNoise(1e-12).voltage_psd(0.0)

    def test_flicker_corner_with_thermal(self):
        thermal = ThermalNoise(resistance=1e3)
        flicker = FlickerNoise(k_flicker=float(thermal.voltage_psd(1.0)) * 1e5)
        assert flicker.corner_with(thermal) == pytest.approx(1e5)

    def test_shot_noise_scales_with_current(self):
        low = ShotNoise(dc_current=1e-3, transresistance=1e3)
        high = ShotNoise(dc_current=4e-3, transresistance=1e3)
        assert high.voltage_psd(1e6) == pytest.approx(4.0 * low.voltage_psd(1e6))

    def test_composite_adds_psds(self):
        a = ThermalNoise(resistance=1e3)
        b = ThermalNoise(resistance=3e3)
        composite = CompositeNoise([a, b])
        assert composite.voltage_psd(1e6) == pytest.approx(
            a.voltage_psd(1e6) + b.voltage_psd(1e6))

    def test_composite_empty_is_silent(self):
        assert CompositeNoise().voltage_psd(1e6) == 0.0

    def test_composite_flicker_corner_detection(self):
        thermal = ThermalNoise(resistance=1e3)
        flicker = FlickerNoise(k_flicker=float(thermal.voltage_psd(1.0)) * 5e4)
        composite = CompositeNoise([thermal, flicker])
        corner = composite.flicker_corner()
        assert 1e4 < corner < 3e5

    def test_integrated_rms_grows_with_bandwidth(self):
        source = ThermalNoise(resistance=1e3)
        narrow = source.integrated_rms(1e3, 1e5)
        wide = source.integrated_rms(1e3, 1e7)
        assert wide > narrow

    def test_integrated_rms_of_white_source_scales_with_sqrt_bandwidth(self):
        source = ThermalNoise(resistance=1e3)
        rms = source.integrated_rms(1.0, 1e6 + 1.0)
        expected = math.sqrt(float(source.voltage_psd(1.0)) * 1e6)
        assert rms == pytest.approx(expected, rel=0.01)
