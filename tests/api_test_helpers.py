"""Shared helpers for the API-layer tests (tests/test_api.py, test_serve.py).

Kept out of ``conftest.py`` because the repo has two conftests (tests/ and
benchmarks/) and a plain ``import conftest`` would be ambiguous under
pytest's prepend import mode; the fixtures built on these helpers still
live in ``tests/conftest.py``.
"""

from __future__ import annotations

from repro.api import SpecRequest
from repro.core.config import MixerDesign, MixerMode
from repro.optimize import default_targets

#: Active-mode-only Table I targets in wire form, derived from the
#: canonical default set so the numbers cannot drift from
#: repro.optimize.targets (benchmarks/test_bench_optimize.py and
#: tools/serve_smoke.py derive theirs the same way).
ACTIVE_TARGETS = [target.to_wire() for target in default_targets()
                  if target.mode is MixerMode.ACTIVE]

#: Small grid overrides keeping the full-registry API tests fast in CI.
#: The yield_opt entry restricts the targets to active-mode bounds (halving
#: the modes the sweep must solve) on a 3-candidate, 2-iteration search.
SMALL_GRIDS: dict[str, dict] = {
    "fig8": {"points": 24},
    "fig9": {"points": 24},
    "fig10": {"input_powers_dbm": [-45.0, -43.0, -41.0, -39.0, -37.0, -35.0]},
    "table1": {},
    "iip2": {"input_powers_dbm": [-45.0, -43.0, -41.0, -39.0, -37.0]},
    "p1db": {"input_powers_dbm": [-40.0, -34.0, -28.0, -22.0, -16.0, -10.0]},
    "power_budget": {},
    "tia_response": {"points": 16},
    "ablation": {},
    "yield_opt": {
        "population": 3,
        "iterations": 2,
        "num_samples": 4,
        "targets": ACTIVE_TARGETS,
    },
}

EXPERIMENT_NAMES = sorted(SMALL_GRIDS)


def small_request(name: str, design: MixerDesign | None = None) -> SpecRequest:
    """A SpecRequest for ``name`` on the shared small grid."""
    return SpecRequest(experiment=name,
                       design=design if design is not None else MixerDesign(),
                       grid=SMALL_GRIDS[name])
