"""Shared helpers for the API-layer tests (tests/test_api.py, test_serve.py).

Kept out of ``conftest.py`` because the repo has two conftests (tests/ and
benchmarks/) and a plain ``import conftest`` would be ambiguous under
pytest's prepend import mode; the fixtures built on these helpers still
live in ``tests/conftest.py``.
"""

from __future__ import annotations

import collections
import threading
from dataclasses import dataclass

from repro.api import SpecRequest, register_payload_type, report_progress
from repro.api.registry import ExperimentRegistry, ExperimentSpec
from repro.core.config import MixerDesign, MixerMode
from repro.optimize import default_targets

#: Active-mode-only Table I targets in wire form, derived from the
#: canonical default set so the numbers cannot drift from
#: repro.optimize.targets (benchmarks/test_bench_optimize.py and
#: tools/serve_smoke.py derive theirs the same way).
ACTIVE_TARGETS = [target.to_wire() for target in default_targets()
                  if target.mode is MixerMode.ACTIVE]

#: Small grid overrides keeping the full-registry API tests fast in CI.
#: The yield_opt entry restricts the targets to active-mode bounds (halving
#: the modes the sweep must solve) on a 3-candidate, 2-iteration search.
SMALL_GRIDS: dict[str, dict] = {
    "fig8": {"points": 24},
    "fig9": {"points": 24},
    "fig10": {"input_powers_dbm": [-45.0, -43.0, -41.0, -39.0, -37.0, -35.0]},
    "table1": {},
    "iip2": {"input_powers_dbm": [-45.0, -43.0, -41.0, -39.0, -37.0]},
    "p1db": {"input_powers_dbm": [-40.0, -34.0, -28.0, -22.0, -16.0, -10.0]},
    "power_budget": {},
    "tia_response": {"points": 16},
    "ablation": {},
    "digital_if": {"adc_bits": [6, 10, 14]},
    "bits_floor": {"adc_candidates": [10, 12, 14, 16],
                   "lo_candidates": [8, 12],
                   "output_candidates": [16, 20]},
    "yield_opt": {
        "population": 3,
        "iterations": 2,
        "num_samples": 4,
        "targets": ACTIVE_TARGETS,
    },
    "yield_pareto": {
        "population": 3,
        "iterations": 2,
        "num_samples": 4,
        "targets": ACTIVE_TARGETS,
    },
}

EXPERIMENT_NAMES = sorted(SMALL_GRIDS)


def small_request(name: str, design: MixerDesign | None = None) -> SpecRequest:
    """A SpecRequest for ``name`` on the shared small grid."""
    return SpecRequest(experiment=name,
                       design=design if design is not None else MixerDesign(),
                       grid=SMALL_GRIDS[name])


# -- controllable fake experiments for job/concurrency tests ------------------

@dataclass
class EchoResult:
    """Trivial result payload for the injected test experiments."""

    label: str
    value: float


register_payload_type(EchoResult)

#: Named gates the ``echo`` runner can block on — lets a test hold a job
#: in the running state deterministically, observe it, then release it.
GATES: dict[str, threading.Event] = {}

#: Engine-invocation counters: ``CALLS["run"]`` counts per-design runner
#: executions (the batch runner routes through the same path), and
#: ``CALLS["batch"]`` counts batch-runner calls.  Singleflight/coalescing
#: tests reset this (``CALLS.clear()``) and assert exact execution counts.
CALLS: collections.Counter = collections.Counter()


def open_gate(name: str) -> threading.Event:
    """(Re)create the named gate in the closed state."""
    GATES[name] = threading.Event()
    return GATES[name]


def _run_echo(design: MixerDesign, *, value: float = 1.0, fail: bool = False,
              gate: str = "", drop_nth: int = -1, workers: int | None = None,
              cache: object = None) -> EchoResult:
    # drop_nth only means something to the batch runner; the solo runner
    # accepts it so single-member echo_batch groups still dispatch.
    # workers/cache are accepted (and ignored) so the ``echo_opts`` entry
    # can declare accepts_workers/accepts_cache for option-identity tests.
    del drop_nth, workers, cache
    CALLS["run"] += 1
    if gate:
        report_progress(stage="echo", gate=gate, checkpoint=1)
        GATES[gate].wait(timeout=30)
    if fail:
        raise RuntimeError("injected runner failure")
    return EchoResult(label=design.fingerprint()[:12], value=float(value))


def _batch_echo(designs, *, value: float = 1.0, fail: bool = False,
                gate: str = "", drop_nth: int = -1,
                workers: int | None = None, cache: object = None):
    """Batch runner that can drop (or ``None`` out) one member's result."""
    del workers, cache
    CALLS["batch"] += 1
    results = {}
    for index, (fingerprint, design) in enumerate(designs.items()):
        if index == drop_nth:
            results[fingerprint] = None  # an omitted member behaves the same
            continue
        results[fingerprint] = _run_echo(design, value=value, fail=fail,
                                         gate=gate)
    return results


def _report_echo(result: EchoResult) -> str:
    return f"echo {result.label}: {result.value}"


def echo_registry() -> ExperimentRegistry:
    """A registry with controllable experiments (block/fail/drop on demand).

    ``echo`` is a plain experiment; ``echo_batch`` adds a batch runner whose
    ``drop_nth`` grid knob injects a per-member failure — the scenario the
    batch-alignment fix must turn into a loud error, never a silently
    shortened response list.
    """
    registry = ExperimentRegistry()
    grid = {"value": 1.0, "fail": False, "gate": ""}
    registry.register(ExperimentSpec(
        name="echo", artefact="test fixture", summary="controllable runner",
        runner=_run_echo, result_type=EchoResult, report=_report_echo,
        default_grid=grid, accepts_workers=False, accepts_cache=False))
    registry.register(ExperimentSpec(
        name="echo_batch", artefact="test fixture",
        summary="controllable batch runner", runner=_run_echo,
        result_type=EchoResult, report=_report_echo,
        default_grid={**grid, "drop_nth": -1},
        accepts_workers=False, accepts_cache=False,
        batch_runner=_batch_echo))
    registry.register(ExperimentSpec(
        name="echo_opts", artefact="test fixture",
        summary="batchable runner accepting workers/cache options",
        runner=_run_echo, result_type=EchoResult, report=_report_echo,
        default_grid={**grid, "drop_nth": -1},
        accepts_workers=True, accepts_cache=True,
        batch_runner=_batch_echo))
    return registry
