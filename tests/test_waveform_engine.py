"""Tests for the vectorized waveform engine (:mod:`repro.waveform`).

The acceptance bars, straight from the engine's contract:

* scalar/vector equivalence to 1e-9 on the Fig. 10 two-tone grid and the
  P1dB single-tone grid — the batched path must agree with independent
  point-by-point measurements for every power, mode and measure;
* :class:`WaveformResult` honours the full :class:`SweepResult` contract
  (labelled selection, ``concat``, exact ``to_dict``/``from_dict``);
* the content-addressed waveform cache serves warm re-runs with **zero FFT
  evaluations**, degrades corrupt entries to recomputes, and keys on
  design fingerprint + mode + stimulus-plan hash;
* design-axis sharding through the parallel runner is bit-identical to the
  inline run for any worker count;
* the ``fig10`` / ``iip2`` / ``p1db`` batch adapters are bit-identical to
  solo runs, and waveform-measured specs score in ``run_yield_opt``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.rf.signal import Tone, TwoToneSource, sample_times
from repro.rf.spectrum import Spectrum
from repro.rf.twotone import measure_two_tone
from repro.sweep.montecarlo import DeviceSpread, sample_design
from repro.waveform import (
    POWER_AXIS,
    StimulusPlan,
    WaveformCache,
    WaveformResult,
    WaveformRunner,
    evaluate_plan,
    make_waveform_runner,
    resolve_waveform_cache,
    single_tone_plan,
    two_tone_plan,
    waveform_fft_count,
)
from repro.waveform.parallel import ParallelWaveformRunner

LO = 2.4e9
TONE_1 = 2.405e9
TONE_2 = 2.407e9
FIG10_POWERS = tuple(np.arange(-45.0, -19.0, 2.0))
P1DB_POWERS = tuple(np.arange(-40.0, -6.0, 2.0))

EQUIV = 1e-9  # scalar/vector equivalence bar


@pytest.fixture(scope="module", params=[MixerMode.ACTIVE, MixerMode.PASSIVE],
                ids=["active", "passive"])
def mode(request):
    return request.param


@pytest.fixture(scope="module")
def device(mode, design, sample_rate):
    mixer = ReconfigurableMixer(design, mode)
    return mixer.waveform_device(sample_rate, lo_frequency=LO,
                                 rf_band_frequency=TONE_1)


class TestStimulusPlan:
    def test_two_tone_plan_shape(self, sample_rate, num_samples):
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                             num_samples, lo_frequency=LO)
        assert plan.kind == "two_tone"
        assert plan.measures == ("fundamental_dbm", "im3_dbm", "im2_dbm")
        assert plan.rf_band_frequency == TONE_1
        products = plan.product_frequencies()
        assert products["fundamental"] == pytest.approx(5e6)
        assert products["im2"] == pytest.approx(2e6)

    def test_single_tone_output_frequency_defaults(self, sample_rate,
                                                   num_samples):
        mixer_plan = single_tone_plan(TONE_1, P1DB_POWERS, sample_rate,
                                      num_samples, lo_frequency=LO)
        assert mixer_plan.product_frequencies()["output"] == \
            pytest.approx(5e6)
        amp_plan = single_tone_plan(1e8, P1DB_POWERS, sample_rate,
                                    num_samples)
        assert amp_plan.product_frequencies()["output"] == pytest.approx(1e8)

    def test_validation(self, sample_rate, num_samples):
        with pytest.raises(ValueError, match="distinct"):
            two_tone_plan(TONE_1, TONE_1, FIG10_POWERS, sample_rate,
                          num_samples)
        with pytest.raises(ValueError, match="input power"):
            two_tone_plan(TONE_1, TONE_2, [], sample_rate, num_samples)
        with pytest.raises(ValueError, match="Nyquist"):
            single_tone_plan(6e9, P1DB_POWERS, sample_rate, num_samples)
        with pytest.raises(ValueError, match="kind"):
            StimulusPlan(kind="three_tone", frequencies=(1e9,),
                         input_powers_dbm=(-30.0,), sample_rate=sample_rate,
                         num_samples=num_samples)

    def test_content_hash_tracks_every_field(self, sample_rate, num_samples):
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                             num_samples, lo_frequency=LO)
        assert plan.content_hash() == two_tone_plan(
            TONE_1, TONE_2, FIG10_POWERS, sample_rate, num_samples,
            lo_frequency=LO).content_hash()
        different = [
            plan.with_powers(P1DB_POWERS),
            two_tone_plan(TONE_1, TONE_2 + 1e6, FIG10_POWERS, sample_rate,
                          num_samples, lo_frequency=LO),
            two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                          num_samples, lo_frequency=LO + 1e6),
        ]
        hashes = {plan.content_hash()} | {p.content_hash()
                                          for p in different}
        assert len(hashes) == 1 + len(different)

    def test_coherence_detection(self, sample_rate, num_samples):
        coherent = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                                 num_samples, lo_frequency=LO)
        assert coherent.is_coherent()
        leaky = single_tone_plan(2.405e9 + 137.0, P1DB_POWERS, sample_rate,
                                 num_samples)
        assert not leaky.is_coherent()

    def test_round_trips_through_json(self, sample_rate, num_samples):
        plan = single_tone_plan(TONE_1, P1DB_POWERS, sample_rate,
                                num_samples, lo_frequency=LO,
                                output_frequency=5e6)
        rebuilt = StimulusPlan.from_dict(json.loads(
            json.dumps(plan.to_dict())))
        assert rebuilt == plan
        assert rebuilt.content_hash() == plan.content_hash()


class TestScalarVectorEquivalence:
    """The 1e-9 bar on the Fig. 10 and P1dB grids, per mode and measure."""

    def test_two_tone_fig10_grid(self, device, sample_rate, num_samples):
        source = TwoToneSource(TONE_1, TONE_2, FIG10_POWERS[0])
        scalar = [measure_two_tone(device, source.with_power(float(p)),
                                   sample_rate, num_samples, lo_frequency=LO)
                  for p in FIG10_POWERS]
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                             num_samples, lo_frequency=LO)
        batched = evaluate_plan(device, plan)
        for measure, attribute in (("fundamental_dbm",
                                    "fundamental_output_dbm"),
                                   ("im3_dbm", "im3_output_dbm"),
                                   ("im2_dbm", "im2_output_dbm")):
            reference = np.array([getattr(r, attribute) for r in scalar])
            worst = float(np.max(np.abs(batched[measure] - reference)))
            assert worst <= EQUIV, f"{measure} drifts by {worst}"

    def test_single_tone_p1db_grid(self, device, sample_rate, num_samples):
        times = sample_times(sample_rate, num_samples)
        reference = np.array([
            Spectrum(device(Tone(TONE_1, float(p)).waveform(times)),
                     sample_rate).power_dbm_at(5e6)
            for p in P1DB_POWERS
        ])
        plan = single_tone_plan(TONE_1, P1DB_POWERS, sample_rate,
                                num_samples, lo_frequency=LO,
                                output_frequency=5e6)
        batched = evaluate_plan(device, plan)
        worst = float(np.max(np.abs(batched["output_dbm"] - reference)))
        assert worst <= EQUIV, f"output_dbm drifts by {worst}"
        gains = batched["output_dbm"] - np.asarray(P1DB_POWERS)
        assert np.max(np.abs(batched["gain_db"] - gains)) <= EQUIV


class TestWaveformRunner:
    def test_axes_and_values(self, design, sample_rate, num_samples):
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS, sample_rate,
                             num_samples, lo_frequency=LO)
        result = WaveformRunner(design).run(plan)
        assert [axis.name for axis in result.axes] == \
            ["design", "mode", POWER_AXIS]
        assert result.shape == (1, 2, len(FIG10_POWERS))
        powers, fundamental = result.power_curve("fundamental_dbm",
                                                 mode=MixerMode.PASSIVE)
        assert np.array_equal(powers, np.asarray(FIG10_POWERS))
        assert fundamental.shape == (len(FIG10_POWERS),)

    def test_cell_independent_of_population(self, design, sample_rate,
                                            num_samples):
        """A design's cell is bit-identical solo or inside a population."""
        rng = np.random.default_rng(5)
        other = sample_design(design, rng, DeviceSpread(), "wf-pop")
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS[:6], sample_rate,
                             num_samples, lo_frequency=LO)
        solo = WaveformRunner(design).run(plan)
        population = WaveformRunner(design).run(
            plan, designs={"nominal": design, "other": other})
        for measure in plan.measures:
            assert np.array_equal(
                solo.values(measure, design="nominal"),
                population.values(measure, design="nominal"))

    def test_round_trip_preserves_subclass_and_bits(self, design,
                                                    sample_rate, num_samples):
        plan = single_tone_plan(TONE_1, P1DB_POWERS[:5], sample_rate,
                                num_samples, lo_frequency=LO)
        result = WaveformRunner(design).run(plan)
        rebuilt = WaveformResult.from_dict(json.loads(
            json.dumps(result.to_dict())))
        assert isinstance(rebuilt, WaveformResult)
        for measure in plan.measures:
            assert np.array_equal(rebuilt.data[measure], result.data[measure])

    def test_rejects_non_plans(self, design):
        with pytest.raises(TypeError, match="StimulusPlan"):
            WaveformRunner(design).run(plan="two_tone")


class TestWaveformCache:
    @pytest.fixture()
    def plan(self, sample_rate, num_samples):
        return two_tone_plan(TONE_1, TONE_2, FIG10_POWERS[:5], sample_rate,
                             num_samples, lo_frequency=LO)

    def test_warm_run_performs_zero_fft_evaluations(self, design, plan,
                                                    tmp_path):
        cold = WaveformRunner(design, cache=str(tmp_path))
        first = cold.run(plan)
        assert cold.cache.stores == 2  # one entry per mode
        before = waveform_fft_count()
        warm = WaveformRunner(design, cache=str(tmp_path))
        second = warm.run(plan)
        assert waveform_fft_count() == before
        assert warm.cache.hits == 2
        for measure in plan.measures:
            assert np.array_equal(first.data[measure], second.data[measure])

    def test_different_plan_misses(self, design, plan, tmp_path):
        runner = WaveformRunner(design, cache=str(tmp_path))
        runner.run(plan)
        before = waveform_fft_count()
        runner.run(plan.with_powers(FIG10_POWERS[:4]))
        assert waveform_fft_count() == before + 2

    def test_corrupt_entry_degrades_to_recompute(self, design, plan,
                                                 tmp_path):
        cache = WaveformCache(tmp_path)
        runner = WaveformRunner(design, cache=cache)
        result = runner.run(plan, modes=[MixerMode.PASSIVE])
        entry = cache.entry_path(design, MixerMode.PASSIVE, plan)
        entry.write_text("{not json", encoding="utf-8")
        again = WaveformRunner(design, cache=cache).run(
            plan, modes=[MixerMode.PASSIVE])
        assert cache.corrupt == 1
        for measure in plan.measures:
            assert np.array_equal(result.data[measure], again.data[measure])
        # The recompute replaced the bad entry.
        assert json.loads(entry.read_text(encoding="utf-8"))

    def test_kill_switch_disables_caching(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert resolve_waveform_cache(str(tmp_path)) is None
        assert resolve_waveform_cache(True) is None

    def test_resolver_adopts_spec_cache_directory(self, tmp_path):
        from repro.sweep.cache import SpecCache

        resolved = resolve_waveform_cache(SpecCache(tmp_path))
        assert isinstance(resolved, WaveformCache)
        assert resolved.directory == tmp_path
        with pytest.raises(TypeError, match="cache"):
            resolve_waveform_cache(1.5)

    def test_store_rejects_incomplete_measures(self, design, plan, tmp_path):
        cache = WaveformCache(tmp_path)
        with pytest.raises(ValueError, match="missing"):
            cache.store(design, MixerMode.ACTIVE, plan,
                        {"fundamental_dbm": np.zeros(5)})


class TestParallelWaveformRunner:
    @pytest.fixture(scope="class")
    def population(self, design):
        rng = np.random.default_rng(11)
        return {f"par-{i}": sample_design(design, rng, DeviceSpread(),
                                          f"par-{i}")
                for i in range(4)}

    def test_sharded_run_is_bit_identical(self, design, population,
                                          sample_rate, num_samples):
        plan = two_tone_plan(TONE_1, TONE_2, FIG10_POWERS[:5], sample_rate,
                             num_samples, lo_frequency=LO)
        inline = WaveformRunner(design).run(plan, designs=population)
        sharded = ParallelWaveformRunner(design, workers=2).run(
            plan, designs=population)
        assert isinstance(sharded, WaveformResult)
        assert [a.values for a in sharded.axes] == \
            [a.values for a in inline.axes]
        for measure in plan.measures:
            assert np.array_equal(inline.data[measure],
                                  sharded.data[measure])

    def test_single_design_runs_inline(self, design, sample_rate,
                                       num_samples):
        plan = single_tone_plan(TONE_1, P1DB_POWERS[:4], sample_rate,
                                num_samples, lo_frequency=LO)
        runner = ParallelWaveformRunner(design, workers=4)
        result = runner.run(plan, modes=[MixerMode.ACTIVE])
        assert result.shape == (1, 1, 4)

    def test_make_runner_selection(self, design):
        assert isinstance(make_waveform_runner(design), WaveformRunner)
        assert isinstance(make_waveform_runner(design, workers=1),
                          WaveformRunner)
        assert isinstance(make_waveform_runner(design, workers=2),
                          ParallelWaveformRunner)
        with pytest.raises(ValueError, match="workers"):
            ParallelWaveformRunner(design, workers=0)


class TestBatchAdapters:
    """The fig10 / iip2 / p1db population adapters vs solo runs."""

    @pytest.fixture(scope="class")
    def population(self, design):
        rng = np.random.default_rng(23)
        return {"nominal": design,
                "corner": sample_design(design, rng, DeviceSpread(),
                                        "corner")}

    SMALL_POWERS = [-45.0, -43.0, -41.0, -39.0, -37.0]

    def test_sweep_fig10_matches_solo(self, population):
        from repro.experiments import run_fig10, sweep_fig10

        batch = sweep_fig10(population, input_powers_dbm=self.SMALL_POWERS)
        for label, record in population.items():
            solo = run_fig10(record, input_powers_dbm=self.SMALL_POWERS)
            assert batch[label].passive.iip3_dbm == solo.passive.iip3_dbm
            assert batch[label].active.iip3_dbm == solo.active.iip3_dbm
            assert np.array_equal(batch[label].passive.im3_dbm,
                                  solo.passive.im3_dbm)

    def test_sweep_iip2_matches_solo(self, population):
        from repro.experiments import run_iip2, sweep_iip2

        batch = sweep_iip2(population, input_powers_dbm=self.SMALL_POWERS)
        for label, record in population.items():
            solo = run_iip2(record, input_powers_dbm=self.SMALL_POWERS)
            for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
                assert batch[label].for_mode(mode).measured_iip2_dbm == \
                    solo.for_mode(mode).measured_iip2_dbm
                assert batch[label].for_mode(mode).analytic_iip2_dbm == \
                    solo.for_mode(mode).analytic_iip2_dbm

    def test_sweep_p1db_matches_solo(self, population):
        from repro.experiments import run_p1db, sweep_p1db

        powers = list(np.arange(-40.0, -8.0, 4.0))
        batch = sweep_p1db(population, input_powers_dbm=powers)
        for label, record in population.items():
            solo = run_p1db(record, input_powers_dbm=powers)
            for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
                assert batch[label].for_mode(mode).measured_p1db_dbm == \
                    solo.for_mode(mode).measured_p1db_dbm
                assert np.array_equal(batch[label].for_mode(mode).gains_db,
                                      solo.for_mode(mode).gains_db)

    def test_p1db_experiment_shape(self, design):
        from repro.experiments import run_p1db
        from repro.experiments.p1db_compression import format_report

        result = run_p1db(design)
        assert result.both_found
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            panel = result.for_mode(mode)
            assert panel.measured_p1db_dbm == \
                pytest.approx(panel.analytic_p1db_dbm, abs=2.5)
        # Passive mode compresses later (the paper's Table I ordering).
        assert result.passive.measured_p1db_dbm > \
            result.active.measured_p1db_dbm
        assert "P1dB" in format_report(result)

    def test_fig10_warm_cache_skips_ffts_and_solves(self, design, tmp_path):
        from repro.core.transconductance import sizing_solve_count
        from repro.experiments import run_fig10

        first = run_fig10(design, input_powers_dbm=self.SMALL_POWERS,
                          cache=str(tmp_path))
        ffts = waveform_fft_count()
        solves = sizing_solve_count()
        again = run_fig10(design, input_powers_dbm=self.SMALL_POWERS,
                          cache=str(tmp_path))
        assert waveform_fft_count() == ffts
        assert sizing_solve_count() == solves
        assert again.passive.iip3_dbm == first.passive.iip3_dbm
        assert again.active.analytic_iip3_dbm == first.active.analytic_iip3_dbm


class TestNonFiniteWireFormat:
    """inf/nan results (unreached compression) must serve as strict JSON."""

    def test_encode_tags_non_finite_floats(self):
        import math

        from repro.api import decode, encode

        payload = encode({"p1db": math.inf, "floor": -math.inf,
                          "bins": np.array([1.0, -np.inf])})
        text = json.dumps(payload, allow_nan=False)  # strict JSON or raise
        rebuilt = decode(json.loads(text))
        assert rebuilt["p1db"] == math.inf and rebuilt["floor"] == -math.inf
        assert isinstance(rebuilt["bins"], np.ndarray)
        assert rebuilt["bins"][0] == 1.0 and rebuilt["bins"][1] == -np.inf

    def test_uncompressed_p1db_serves_as_strict_json(self, design):
        from repro.api import MixerService, SpecRequest

        # A small-signal-only sweep never reaches 1 dB of compression, so
        # the result carries inf — the response must still be strict JSON.
        response = MixerService(response_cache=False).submit(SpecRequest(
            experiment="p1db",
            grid={"input_powers_dbm": [-60.0, -58.0, -56.0, -54.0]}))
        result = response.result
        assert not result.both_found
        text = json.dumps(response.to_dict(), allow_nan=False)
        rebuilt = json.loads(text)
        assert rebuilt["result_schema"] == "P1dbResult"


class TestWaveformYieldTargets:
    def test_waveform_targets_score_and_are_deterministic(self):
        from repro.optimize import SpecTarget, run_yield_opt

        targets = [SpecTarget("waveform_iip3_dbm", MixerMode.PASSIVE,
                              minimum=5.0),
                   SpecTarget("waveform_p1db_dbm", MixerMode.PASSIVE,
                              minimum=-16.0)]
        first = run_yield_opt(targets=targets, population=2, iterations=1,
                              num_samples=2)
        second = run_yield_opt(targets=targets, population=2, iterations=1,
                               num_samples=2)
        assert first.best_fingerprint() == second.best_fingerprint()
        assert set(first.best_spec_yields) == \
            {"passive:waveform_iip3_dbm", "passive:waveform_p1db_dbm"}
        assert 0.0 <= first.best_yield <= 1.0

    def test_mixed_targets_combine_both_engines(self):
        from repro.optimize import SpecTarget, run_yield_opt

        targets = [SpecTarget("conversion_gain_db", MixerMode.ACTIVE,
                              minimum=28.0),
                   SpecTarget("waveform_iip3_dbm", MixerMode.ACTIVE,
                              minimum=-13.0)]
        result = run_yield_opt(targets=targets, population=2, iterations=1,
                               num_samples=2)
        assert set(result.best_spec_yields) == \
            {"active:conversion_gain_db", "active:waveform_iip3_dbm"}

    def test_unknown_spec_rejected_with_targetable_list(self):
        from repro.optimize import SpecTarget

        with pytest.raises(ValueError, match="waveform_iip3_dbm"):
            SpecTarget("waveform_iip5_dbm", MixerMode.ACTIVE, minimum=0.0)

    def test_off_bin_operating_point_rejected(self):
        """A design whose LO/IF misses the scoring bin grid must fail
        loudly, not score through leaky bins."""
        from dataclasses import replace

        from repro.core.config import MixerDesign
        from repro.optimize import SpecTarget, run_yield_opt

        off_grid = replace(MixerDesign(), if_frequency=5.5e6 + 137.0)
        with pytest.raises(ValueError, match="bin grid"):
            run_yield_opt(design=off_grid,
                          targets=[SpecTarget("waveform_iip3_dbm",
                                              MixerMode.PASSIVE,
                                              minimum=5.0)],
                          population=2, iterations=1, num_samples=2)
