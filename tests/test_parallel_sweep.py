"""Tests for the parallel sweep runner and SweepResult concatenation."""

from __future__ import annotations

import glob
import os
from dataclasses import replace

import numpy as np
import pytest

import repro.sweep.parallel as parallel_module
from repro.core.config import MixerDesign, MixerMode
from repro.sweep import (
    DESIGN_AXIS,
    DeviceSpread,
    ParallelSweepRunner,
    SweepAxis,
    SweepResult,
    SweepRunner,
    make_runner,
    run_monte_carlo,
    sample_design,
)
from repro.sweep.parallel import SEGMENT_PREFIX


def _sampled_designs(design: MixerDesign, count: int,
                     seed: int = 11) -> dict[str, MixerDesign]:
    rng = np.random.default_rng(seed)
    return {f"mc-{i:03d}": sample_design(design, rng, DeviceSpread(), f"mc-{i:03d}")
            for i in range(count)}


class TestConcat:
    def _result(self, labels, base=0.0) -> SweepResult:
        axes = (SweepAxis.categorical(DESIGN_AXIS, labels),
                SweepAxis.numeric("rf_frequency_hz", [1e9, 2e9]))
        data = {"gain_db": base + np.arange(2.0 * len(labels)).reshape(
            len(labels), 2)}
        return SweepResult(axes, data)

    def test_concat_preserves_order_and_values(self):
        joined = SweepResult.concat(
            [self._result(["a", "b"]), self._result(["c"], base=100.0)])
        assert joined.axis(DESIGN_AXIS).values == ("a", "b", "c")
        np.testing.assert_array_equal(
            joined.values("gain_db", design="c"), [100.0, 101.0])
        np.testing.assert_array_equal(
            joined.values("gain_db", design="a"), [0.0, 1.0])

    def test_concat_along_numeric_axis(self):
        axes_a = (SweepAxis.numeric("rf_frequency_hz", [1e9]),)
        axes_b = (SweepAxis.numeric("rf_frequency_hz", [2e9, 3e9]),)
        joined = SweepResult.concat(
            [SweepResult(axes_a, {"gain_db": np.array([1.0])}),
             SweepResult(axes_b, {"gain_db": np.array([2.0, 3.0])})],
            axis="rf_frequency_hz")
        assert joined.axis("rf_frequency_hz").values == (1e9, 2e9, 3e9)
        np.testing.assert_array_equal(joined.data["gain_db"], [1.0, 2.0, 3.0])

    def test_single_shard_is_identity(self):
        shard = self._result(["a", "b"], base=7.0)
        joined = SweepResult.concat([shard])
        assert joined.axes == shard.axes
        assert joined.spec_names == shard.spec_names
        np.testing.assert_array_equal(joined.data["gain_db"],
                                      shard.data["gain_db"])

    def test_single_shard_accepts_any_iterable(self):
        joined = SweepResult.concat(iter([self._result(["a"])]))
        assert joined.axis(DESIGN_AXIS).values == ("a",)

    def test_concat_along_unknown_axis_name(self):
        with pytest.raises(KeyError, match="no axis named"):
            SweepResult.concat([self._result(["a"])], axis="if_frequency_hz")

    def test_concat_rejects_different_axis_names(self):
        other_axes = (SweepAxis.categorical(DESIGN_AXIS, ["z"]),
                      SweepAxis.numeric("if_frequency_hz", [1e6, 2e6]))
        other = SweepResult(other_axes, {"gain_db": np.zeros((1, 2))})
        with pytest.raises(ValueError, match="different axes"):
            SweepResult.concat([self._result(["a"]), other])

    def test_concat_rejects_different_grid_lengths(self):
        other_axes = (SweepAxis.categorical(DESIGN_AXIS, ["z"]),
                      SweepAxis.numeric("rf_frequency_hz", [1e9, 2e9, 3e9]))
        other = SweepResult(other_axes, {"gain_db": np.zeros((1, 3))})
        with pytest.raises(ValueError, match="only 'design' may vary"):
            SweepResult.concat([self._result(["a"]), other])

    def test_concat_rejects_empty_and_mismatches(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepResult.concat([])
        with pytest.raises(ValueError, match="duplicate"):
            SweepResult.concat([self._result(["a"]), self._result(["a"])])
        other_axes = (SweepAxis.categorical(DESIGN_AXIS, ["z"]),
                      SweepAxis.numeric("rf_frequency_hz", [5e9, 6e9]))
        other = SweepResult(other_axes, {"gain_db": np.zeros((1, 2))})
        with pytest.raises(ValueError, match="only 'design' may vary"):
            SweepResult.concat([self._result(["a"]), other])
        renamed = SweepResult(self._result(["z"]).axes,
                              {"nf_db": np.zeros((1, 2))})
        with pytest.raises(ValueError, match="different specs"):
            SweepResult.concat([self._result(["a"]), renamed])


class TestParallelSweepRunner:
    def test_matches_single_process_bitwise(self, design):
        """The acceptance gate: workers > 1 must be bit-identical."""
        designs = _sampled_designs(design, 5)
        rf = [1.0e9, 2.405e9, 5.0e9]
        single = SweepRunner(design).run(rf_frequencies=rf, designs=designs)
        sharded = ParallelSweepRunner(design, workers=3).run(
            rf_frequencies=rf, designs=designs)
        assert sharded.shape == single.shape
        assert sharded.axis(DESIGN_AXIS).values == \
            single.axis(DESIGN_AXIS).values
        for spec in single.spec_names:
            np.testing.assert_array_equal(sharded.data[spec],
                                          single.data[spec])

    def test_sequence_designs_and_more_workers_than_designs(self, design):
        variant = replace(design, degeneration_resistance=80.0)
        sweep = ParallelSweepRunner(design, specs=("iip3_dbm",),
                                    workers=8).run(
            designs=[design, variant], modes=(MixerMode.PASSIVE,))
        assert sweep.axis(DESIGN_AXIS).values == ("design-0", "design-1")
        assert sweep.value("iip3_dbm", design="design-1", mode="passive") > \
            sweep.value("iip3_dbm", design="design-0", mode="passive")

    def test_single_design_runs_inline(self, design):
        runner = ParallelSweepRunner(design, specs=("conversion_gain_db",),
                                     workers=4)
        sweep = runner.run(rf_frequencies=[1e9, 2e9])
        assert sweep.shape == (1, 2, 2, 1)
        # The inline fallback memoizes on the wrapped runner as usual.
        assert runner._inline.cached_design_count == 1

    def test_rejects_bad_worker_counts(self, design):
        with pytest.raises(ValueError, match="workers"):
            ParallelSweepRunner(design, workers=0)

    def test_rejects_multidimensional_grids_like_sweep_runner(self, design):
        runner = ParallelSweepRunner(design, workers=2)
        with pytest.raises(ValueError, match="one-dimensional"):
            runner.run(rf_frequencies=np.ones((2, 2)))

    def test_default_grids_match_single_process(self, design):
        designs = _sampled_designs(design, 2, seed=5)
        single = SweepRunner(design).run(designs=designs)
        sharded = ParallelSweepRunner(design, workers=2).run(designs=designs)
        assert sharded.axis("rf_frequency_hz").values == \
            (design.rf_frequency,)
        for spec in single.spec_names:
            np.testing.assert_array_equal(sharded.data[spec],
                                          single.data[spec])


def _leaked_segments() -> list[str]:
    """Segments this module created and failed to unlink (Linux view)."""
    if not os.path.isdir("/dev/shm"):
        return []
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


class TestSharedMemoryHandOff:
    def test_bitwise_identity_across_worker_counts(self, design):
        """The acceptance gate: the shm transport must change no bits."""
        designs = _sampled_designs(design, 6, seed=3)
        rf = [1.0e9, 2.405e9]
        single = SweepRunner(design).run(rf_frequencies=rf, designs=designs)
        for workers in (2, 4):
            shm = ParallelSweepRunner(design, workers=workers,
                                      shared_memory=True).run(
                rf_frequencies=rf, designs=designs)
            assert shm.axis(DESIGN_AXIS).values == \
                single.axis(DESIGN_AXIS).values
            for spec in single.spec_names:
                np.testing.assert_array_equal(shm.data[spec],
                                              single.data[spec])
        assert _leaked_segments() == []

    def test_falls_back_to_pickle_when_unavailable(self, design, monkeypatch):
        """No shared memory on the platform: same results, no error."""
        monkeypatch.setattr(parallel_module, "_shared_memory", None)
        designs = _sampled_designs(design, 4, seed=7)
        single = SweepRunner(design).run(designs=designs)
        fallback = ParallelSweepRunner(design, workers=2,
                                       shared_memory=True).run(designs=designs)
        for spec in single.spec_names:
            np.testing.assert_array_equal(fallback.data[spec],
                                          single.data[spec])

    def test_worker_exception_leaks_no_segments(self, design):
        """A shard failure must unlink both segments before propagating."""
        designs = _sampled_designs(design, 4, seed=9)
        designs["greedy"] = replace(design, tca_gm=1.0)
        runner = ParallelSweepRunner(design, workers=2, shared_memory=True)
        with pytest.raises(ValueError, match="target gm unreachable"):
            runner.run(designs=designs)
        assert _leaked_segments() == []

    def test_monte_carlo_accepts_shared_memory(self, design):
        baseline = run_monte_carlo(design, num_samples=4, seed=33)
        shm = run_monte_carlo(design, num_samples=4, seed=33, workers=2,
                              shared_memory=True)
        for spec in baseline.sweep.spec_names:
            np.testing.assert_array_equal(shm.sweep.data[spec],
                                          baseline.sweep.data[spec])


class TestMakeRunner:
    def test_workers_choose_the_runner_type(self, design):
        assert isinstance(make_runner(design), SweepRunner)
        assert isinstance(make_runner(design, workers=1), SweepRunner)
        parallel = make_runner(design, workers=2)
        assert isinstance(parallel, ParallelSweepRunner)
        assert parallel.workers == 2

    def test_shared_memory_flag_reaches_the_runner(self, design):
        assert make_runner(design, workers=2).shared_memory is False
        assert make_runner(design, workers=2,
                           shared_memory=True).shared_memory is True


class TestMonteCarloParallel:
    def test_workers_reproduce_the_single_process_run(self, design):
        baseline = run_monte_carlo(design, num_samples=6, seed=21)
        sharded = run_monte_carlo(design, num_samples=6, seed=21, workers=3)
        for spec in baseline.sweep.spec_names:
            np.testing.assert_array_equal(sharded.sweep.data[spec],
                                          baseline.sweep.data[spec])
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            np.testing.assert_array_equal(
                sharded.samples("conversion_gain_db", mode),
                baseline.samples("conversion_gain_db", mode))
