"""Tests for the multi-objective Pareto optimiser (repro.optimize.pareto).

The load-bearing guarantees, straight from the acceptance bar:

* the final front is **bit-identical** — same design fingerprints, same
  objective vectors, same order — for workers=1 vs workers=4 and through
  the in-process, HTTP and CLI surfaces;
* a :class:`ParetoFront` survives the strict-JSON wire exactly, including
  non-finite objective values (tagged, never a bare ``Infinity`` token);
* dominance/rank/crowding follow the NSGA-II conventions and are
  deterministic under permutation of the input points.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.api import SpecRequest, decode, encode
from repro.cli import main as cli_main
from repro.core.config import MixerDesign, MixerMode
from repro.optimize import (
    Objective,
    ParetoFront,
    ParetoPoint,
    default_objectives,
    parse_objectives,
    run_pareto_opt,
    run_yield_opt,
)
from repro.optimize.pareto import (
    crowding_distance,
    format_pareto_report,
    nondominated_rank,
    pareto_mask,
    pareto_order,
)
from repro.serve import create_server, serve_in_thread

from api_test_helpers import ACTIVE_TARGETS

#: Tiny multi-objective search shared by the determinism tests (the same
#: scale as test_optimize.TINY: 3 candidates x 2 generations x 4 corners).
TINY = dict(population=3, iterations=2, num_samples=4,
            targets=ACTIVE_TARGETS)


@pytest.fixture(scope="module")
def tiny_front():
    return run_pareto_opt(**TINY)


def _point(label: str, values, design: MixerDesign | None = None,
           **design_changes) -> ParetoPoint:
    from dataclasses import replace
    design = design if design is not None else MixerDesign()
    if design_changes:
        design = replace(design, **design_changes)
    return ParetoPoint(label=label, design=design,
                       objectives=np.asarray(values, dtype=float),
                       overall_yield=0.5, spec_yields={})


class TestObjective:
    def test_yield_objective_is_modeless(self):
        objective = Objective("yield")
        assert objective.key == "yield"
        assert objective.sign == 1.0
        with pytest.raises(ValueError, match="mode-less"):
            Objective("yield", MixerMode.ACTIVE)

    def test_spec_objective_needs_a_mode(self):
        objective = Objective("power_mw", MixerMode.ACTIVE, "min")
        assert objective.key == "active:power_mw"
        assert objective.sign == -1.0
        with pytest.raises(ValueError, match="needs a MixerMode"):
            Objective("power_mw")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown objective metric"):
            Objective("gain", MixerMode.ACTIVE)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            Objective("yield", direction="up")

    def test_wire_round_trip(self):
        for objective in default_objectives() + (
                Objective("waveform_iip3_dbm", MixerMode.PASSIVE, "max"),):
            rebuilt = Objective.from_wire(json.loads(json.dumps(
                objective.to_wire())))
            assert rebuilt == objective

    def test_parse_defaults_and_mixed_forms(self):
        assert parse_objectives(None) == default_objectives()
        parsed = parse_objectives([
            Objective("yield"),
            ["noise_figure_db", "active", "min"],
        ])
        assert [objective.key for objective in parsed] == \
            ["yield", "active:noise_figure_db"]

    def test_parse_needs_two_objectives(self):
        with pytest.raises(ValueError, match="at least two"):
            parse_objectives([["yield", None, "max"]])

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate objective"):
            parse_objectives([["yield", None, "max"], ["yield", None, "max"]])


class TestDominance:
    def test_pareto_mask_drops_dominated_rows(self):
        signed = np.array([[1.0, 1.0], [0.5, 0.5], [2.0, 0.0], [0.0, 2.0]])
        assert pareto_mask(signed).tolist() == [True, False, True, True]

    def test_duplicate_rows_both_survive(self):
        signed = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        assert pareto_mask(signed).tolist() == [True, True, False]

    def test_rank_counts_fronts(self):
        signed = np.array([[2.0, 2.0], [1.0, 1.0], [0.0, 0.0]])
        assert nondominated_rank(signed).tolist() == [0, 1, 2]

    def test_crowding_boundaries_are_infinite(self):
        signed = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowding = crowding_distance(signed)
        assert crowding[0] == np.inf and crowding[-1] == np.inf
        assert np.all(np.isfinite(crowding[1:-1]))

    def test_order_is_rank_then_crowding_then_index(self):
        signed = np.array([[0.0, 3.0], [1.4, 1.5], [1.5, 1.4], [3.0, 0.0],
                           [0.5, 0.5]])
        order = pareto_order(signed)
        # The dominated interior point comes last; the spread boundary
        # points (infinite crowding) lead their front, index breaking ties.
        assert order[-1] == 4
        assert set(order[:2]) == {0, 3}
        assert order[0] == 0


class TestFront:
    def test_from_points_filters_and_orders(self):
        objectives = [Objective("yield"),
                      Objective("power_mw", MixerMode.ACTIVE, "min")]
        points = [
            _point("b", [0.5, 8.0], tca_gm=0.021),
            _point("a", [0.9, 10.0], tca_gm=0.022),
            _point("dominated", [0.4, 11.0], tca_gm=0.023),
        ]
        front = ParetoFront.from_points(objectives, points)
        assert [point.label for point in front.points] == ["a", "b"]
        permuted = ParetoFront.from_points(objectives, points[::-1])
        assert permuted.fingerprints() == front.fingerprints()
        assert np.array_equal(permuted.objective_matrix(),
                              front.objective_matrix())

    def test_fingerprint_dedupe_keeps_first(self):
        objectives = [Objective("yield"),
                      Objective("power_mw", MixerMode.ACTIVE, "min")]
        # Same design twice with equal scores: one survivor.
        front = ParetoFront.from_points(objectives, [
            _point("x", [0.5, 8.0]), _point("y", [0.5, 8.0])])
        assert [point.label for point in front.points] == ["x"]

    def test_merged_with_keeps_running_front(self):
        objectives = [Objective("yield"),
                      Objective("power_mw", MixerMode.ACTIVE, "min")]
        front = ParetoFront.from_points(
            objectives, [_point("g0", [0.5, 9.0], tca_gm=0.021)])
        merged = front.merged_with(
            [_point("g1", [0.9, 8.0], tca_gm=0.022)])
        assert [point.label for point in merged.points] == ["g1"]

    def test_snapshot_is_strict_json_with_nonfinite_tags(self):
        objectives = [Objective("yield"),
                      Objective("waveform_p1db_dbm", MixerMode.ACTIVE)]
        front = ParetoFront.from_points(objectives, [
            _point("edge", [0.5, np.inf])])
        snapshot = front.snapshot()
        text = json.dumps(snapshot, allow_nan=False)  # must not raise
        assert json.loads(text)[0]["objectives"][1] == {"__float__": "inf"}


class TestSerialization:
    def test_front_round_trips_with_nonfinite_values(self):
        objectives = [Objective("yield"),
                      Objective("waveform_p1db_dbm", MixerMode.ACTIVE)]
        front = ParetoFront.from_points(objectives, [
            _point("edge", [0.5, np.inf], tca_gm=0.021),
            _point("mid", [0.9, -12.5], tca_gm=0.022),
        ])
        payload = encode(front)
        text = json.dumps(payload, allow_nan=False)  # strict-JSON wire
        rebuilt = decode(json.loads(text))
        assert isinstance(rebuilt, ParetoFront)
        assert rebuilt.fingerprints() == front.fingerprints()
        assert [objective.key for objective in rebuilt.objectives] == \
            [objective.key for objective in front.objectives]
        # Front order sorts on the first (yield) objective: "mid" leads.
        matrix = rebuilt.objective_matrix()
        assert matrix[0, 1] == -12.5 and matrix[1, 1] == np.inf

    def test_result_round_trips_exactly(self, tiny_front):
        payload = json.loads(json.dumps(encode(tiny_front),
                                        allow_nan=False))
        rebuilt = decode(payload)
        assert rebuilt.front_fingerprints() == \
            tiny_front.front_fingerprints()
        assert np.array_equal(rebuilt.front.objective_matrix(),
                              tiny_front.front.objective_matrix())
        assert rebuilt.front_history == tiny_front.front_history
        assert encode(rebuilt) == encode(tiny_front)


class TestSearchBehaviour:
    def test_baseline_is_the_incoming_design(self, tiny_front):
        assert tiny_front.baseline_point.label == "i00-c00"
        assert tiny_front.baseline_point.design_fingerprint() == \
            tiny_front.initial_design.fingerprint()

    def test_front_is_mutually_nondominated(self, tiny_front):
        signed = tiny_front.front.objective_matrix() * \
            tiny_front.front.signs()
        assert pareto_mask(signed).all()
        assert tiny_front.front.size >= 1

    def test_front_history_tracks_generations(self, tiny_front):
        assert len(tiny_front.front_history) == tiny_front.iterations
        assert tiny_front.front_history[-1] == tiny_front.front.snapshot()
        assert tiny_front.evaluations == \
            tiny_front.population * tiny_front.iterations * \
            tiny_front.num_samples

    def test_yield_objective_matches_spec_yields(self, tiny_front):
        column = [objective.key
                  for objective in tiny_front.objectives].index("yield")
        for point in tiny_front.front.points:
            assert point.objectives[column] == point.overall_yield
            assert point.overall_yield <= \
                min(point.spec_yields.values()) + 1e-12

    def test_custom_objectives(self):
        result = run_pareto_opt(objectives=[
            ["yield", None, "max"],
            ["noise_figure_db", "active", "min"],
        ], **TINY)
        assert [objective.key for objective in result.objectives] == \
            ["yield", "active:noise_figure_db"]

    def test_run_yield_opt_delegates_with_objectives(self, tiny_front):
        delegated = run_yield_opt(objectives=[objective.to_wire()
                                              for objective in
                                              tiny_front.objectives], **TINY)
        assert encode(delegated) == encode(tiny_front)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_pareto_opt(strategy="anneal", **TINY)
        with pytest.raises(ValueError, match="unknown strategy"):
            run_yield_opt(strategy="anneal", **TINY)

    def test_report_names_objectives_and_points(self, tiny_front):
        report = format_pareto_report(tiny_front)
        for objective in tiny_front.objectives:
            assert objective.key in report
        for point in tiny_front.front.points:
            assert point.label in report


class TestDeterminism:
    def test_worker_count_does_not_change_the_front(self, tiny_front):
        sharded = run_pareto_opt(workers=4, **TINY)
        assert sharded.front_fingerprints() == \
            tiny_front.front_fingerprints()
        assert np.array_equal(sharded.front.objective_matrix(),
                              tiny_front.front.objective_matrix())
        assert encode(sharded) == encode(tiny_front)

    def test_spec_cache_does_not_change_the_front(self, tiny_front,
                                                  tmp_path):
        cold = run_pareto_opt(cache=str(tmp_path), **TINY)
        warm = run_pareto_opt(cache=str(tmp_path), **TINY)
        assert encode(cold) == encode(tiny_front)
        assert encode(warm) == encode(tiny_front)

    def test_cma_strategy_is_deterministic(self):
        first = run_pareto_opt(strategy="cma", **TINY)
        again = run_pareto_opt(strategy="cma", **TINY)
        assert encode(first) == encode(again)
        assert first.strategy == "cma"

    def test_cma_explores_different_candidates(self, tiny_front):
        cma = run_pareto_opt(strategy="cma", **TINY)
        # Generation 1 proposals come from the adapted distribution, not
        # the shrinking-span sampler — the searches genuinely differ.
        assert encode(cma) != encode(tiny_front)


class TestSurfaces:
    @pytest.fixture(scope="class")
    def base_url(self):
        server = create_server()
        thread = serve_in_thread(server)
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_http_returns_the_same_front(self, base_url, tiny_front):
        request = SpecRequest(experiment="yield_pareto", grid=dict(TINY))
        body = json.dumps(request.to_dict()).encode("utf-8")
        http_request = urllib.request.Request(
            base_url + "/v1/spec", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(http_request, timeout=300) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["result"] == json.loads(json.dumps(
            encode(tiny_front)))
        served = decode(payload["result"])
        assert served.front_fingerprints() == \
            tiny_front.front_fingerprints()
        assert np.array_equal(served.front.objective_matrix(),
                              tiny_front.front.objective_matrix())

    def test_cli_returns_the_same_front(self, capsys, tiny_front):
        assert cli_main([
            "run", "yield_pareto",
            "--grid", "population=3",
            "--grid", "iterations=2",
            "--grid", "num_samples=4",
            "--grid", f"targets={json.dumps(ACTIVE_TARGETS)}",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == encode(tiny_front)
        served = decode(payload["result"])
        assert served.front_fingerprints() == \
            tiny_front.front_fingerprints()
