"""Golden-figure regression pins for the paper's headline artifacts.

These tests freeze the *current* reproduction of Fig. 8, Fig. 9, Fig. 10
and Table I to tight numeric tolerances.  They are deliberately stricter
than the shape checks in ``test_experiments.py``: a refactor of the core or
sweep layers that shifts any curve by more than the pinned tolerance is a
reproduction regression and must be reviewed, not absorbed.

Tolerances: analytic quantities (closed-form spec accessors, swept curves)
are pinned to 1e-6 absolute — they must be bit-stable short of a deliberate
model change.  Waveform-measured quantities (two-tone FFT intercepts) are
pinned to 0.02 dB to leave room for last-ulp drift in FFT/filter libraries
while still catching any real change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.experiments import run_fig8, run_fig9, run_fig10, run_table1

ANALYTIC = 1e-6   # absolute tolerance for closed-form quantities
MEASURED = 0.02   # absolute tolerance (dB) for FFT-measured quantities


@pytest.fixture(scope="module")
def fig8(design):
    return run_fig8(design)


@pytest.fixture(scope="module")
def fig9(design):
    return run_fig9(design)


@pytest.fixture(scope="module")
def fig10(design):
    return run_fig10(design)


@pytest.fixture(scope="module")
def table1(design):
    return run_table1(design)


class TestFig8Golden:
    """Fig. 8 — conversion gain vs RF frequency (default 200-point grid)."""

    def test_peak_gains(self, fig8):
        assert fig8.peak_gain_db(MixerMode.ACTIVE) == \
            pytest.approx(29.225128219694163, abs=ANALYTIC)
        assert fig8.peak_gain_db(MixerMode.PASSIVE) == \
            pytest.approx(25.516224275026406, abs=ANALYTIC)

    def test_gain_at_wlan_band(self, fig8):
        assert fig8.gain_at(MixerMode.ACTIVE, 2.45e9) == \
            pytest.approx(29.19190253263783, abs=ANALYTIC)
        assert fig8.gain_at(MixerMode.PASSIVE, 2.45e9) == \
            pytest.approx(25.473669268849495, abs=ANALYTIC)

    def test_band_edges_read_off_curve(self, fig8):
        active_low, active_high = fig8.band_edges_hz(MixerMode.ACTIVE)
        passive_low, passive_high = fig8.band_edges_hz(MixerMode.PASSIVE)
        assert active_low == pytest.approx(852750726.5145735, rel=1e-9)
        assert active_high == pytest.approx(5881406982.08098, rel=1e-9)
        assert passive_low == pytest.approx(467304970.45393515, rel=1e-9)
        assert passive_high == pytest.approx(5264552322.843086, rel=1e-9)


class TestFig9Golden:
    """Fig. 9 — NF and conversion gain vs IF frequency at 2.45 GHz RF."""

    def test_spot_noise_figures_at_5mhz(self, fig9):
        assert fig9.value_at(MixerMode.ACTIVE, "nf", 5e6) == \
            pytest.approx(7.59695935675324, abs=ANALYTIC)
        assert fig9.value_at(MixerMode.PASSIVE, "nf", 5e6) == \
            pytest.approx(10.112128665038034, abs=ANALYTIC)

    def test_spot_gains_at_5mhz(self, fig9):
        assert fig9.value_at(MixerMode.ACTIVE, "gain", 5e6) == \
            pytest.approx(29.196902344507418, abs=ANALYTIC)
        assert fig9.value_at(MixerMode.PASSIVE, "gain", 5e6) == \
            pytest.approx(25.483827565398187, abs=ANALYTIC)

    def test_flicker_corners_read_off_curve(self, fig9):
        assert fig9.flicker_corner_hz(MixerMode.ACTIVE) == \
            pytest.approx(551712.6253787299, rel=1e-9)
        assert fig9.flicker_corner_hz(MixerMode.PASSIVE) == \
            pytest.approx(54208.63623568075, rel=1e-9)


class TestFig10Golden:
    """Fig. 10 — two-tone IIP3 intercepts (waveform-measured + analytic)."""

    def test_measured_intercepts(self, fig10):
        assert fig10.passive.iip3_dbm == pytest.approx(6.850774932497206,
                                                       abs=MEASURED)
        assert fig10.active.iip3_dbm == pytest.approx(-10.594800862122117,
                                                      abs=MEASURED)

    def test_measured_output_intercepts(self, fig10):
        assert fig10.passive.oip3_dbm == pytest.approx(32.33598424137216,
                                                       abs=MEASURED)
        assert fig10.active.oip3_dbm == pytest.approx(18.561064423731953,
                                                      abs=MEASURED)

    def test_analytic_references(self, fig10):
        assert fig10.passive.analytic_iip3_dbm == \
            pytest.approx(6.556303416717682, abs=ANALYTIC)
        assert fig10.active.analytic_iip3_dbm == \
            pytest.approx(-11.907531909389748, abs=ANALYTIC)


class TestTable1Golden:
    """Table I — the "this work" columns at the nominal operating point."""

    def test_active_column(self, table1):
        specs = table1.this_work_active
        assert specs.conversion_gain_db == pytest.approx(29.177058423662693,
                                                         abs=ANALYTIC)
        assert specs.noise_figure_db == pytest.approx(7.591346506394875,
                                                      abs=ANALYTIC)
        assert specs.iip3_dbm == pytest.approx(-11.907531909389748, abs=ANALYTIC)
        assert specs.p1db_dbm == pytest.approx(-21.507531909389748, abs=ANALYTIC)
        assert specs.power_mw == pytest.approx(9.36, abs=ANALYTIC)
        assert specs.band_low_hz == pytest.approx(1000974484.8546876, rel=1e-9)
        assert specs.band_high_hz == pytest.approx(5526213301.801922, rel=1e-9)

    def test_passive_column(self, table1):
        specs = table1.this_work_passive
        assert specs.conversion_gain_db == pytest.approx(25.485587415212006,
                                                         abs=ANALYTIC)
        assert specs.noise_figure_db == pytest.approx(10.111536063293507,
                                                      abs=ANALYTIC)
        assert specs.iip3_dbm == pytest.approx(6.556303416717682, abs=ANALYTIC)
        assert specs.p1db_dbm == pytest.approx(-14.421757015802008, abs=ANALYTIC)
        assert specs.power_mw == pytest.approx(9.24, abs=ANALYTIC)
        assert specs.band_low_hz == pytest.approx(500487242.4273438, rel=1e-9)
        assert specs.band_high_hz == pytest.approx(5101119970.894081, rel=1e-9)

    def test_columns_stay_within_paper_tolerance(self, table1):
        """The pins above must also stay honest to the paper's numbers."""
        deviations = table1.deviations_from_paper()
        for mode in ("active", "passive"):
            assert abs(deviations[mode]["gain_db"]) < 0.5
            assert abs(deviations[mode]["nf_db"]) < 0.5
            assert abs(deviations[mode]["iip3_dbm"]) < 0.5


class TestCurveShapeGolden:
    """Whole-curve checksums: cheap guards over every swept point at once."""

    def test_fig8_curve_checksums(self, fig8):
        assert float(np.mean(fig8.active_gain_db)) == \
            pytest.approx(26.341387131245778, abs=ANALYTIC)
        assert float(np.mean(fig8.passive_gain_db)) == \
            pytest.approx(23.842914018210713, abs=ANALYTIC)

    def test_fig9_curve_checksums(self, fig9):
        assert float(np.mean(fig9.active_nf_db)) == \
            pytest.approx(11.7475976448998, abs=ANALYTIC)
        assert float(np.mean(fig9.passive_nf_db)) == \
            pytest.approx(11.441975547572445, abs=ANALYTIC)
