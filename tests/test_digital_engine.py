"""Tests for the digital-IF engine, cache, sharding and experiment adapters.

The acceptance bars, straight from the subsystem's contract:

* a multi-width plan is bit-identical to running each ADC width alone —
  the broadcast quantizer is an optimisation, never an approximation;
* :class:`DigitalResult` honours the :class:`SweepResult` contract
  (labelled axes, exact ``to_dict``/``from_dict`` round-trips);
* the content-addressed digital cache serves warm re-runs with **zero
  quantization passes**, keys on design + mode + plan hash (which covers
  the embedded analog stimulus), and degrades corruption to a recompute;
* design-axis sharding is bit-identical to the inline run;
* the ``digital_if`` / ``bits_floor`` batch adapters are bit-identical to
  solo runs, and ``digital_snr_db`` scores in ``run_yield_opt``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.digital import (
    BITS_AXIS,
    DigitalIfCache,
    DigitalIfRunner,
    DigitalResult,
    ParallelDigitalRunner,
    digital_if_plan,
    digital_pass_count,
    make_digital_runner,
    resolve_digital_cache,
)
from repro.sweep.montecarlo import DeviceSpread, sample_design

SMALL_BITS = (6, 10, 14)


@pytest.fixture(scope="module")
def plan():
    return digital_if_plan(adc_bits=SMALL_BITS)


class TestDigitalPlan:
    def test_derived_quantities(self, plan):
        assert plan.adc_sample_rate == pytest.approx(160e6)
        assert plan.samples_per_record == 160
        assert plan.output_sample_rate == pytest.approx(8e6)
        assert plan.output_samples == 64
        assert plan.warmup_samples == 8
        assert plan.if_frequency == pytest.approx(5e6)
        assert plan.baseband_frequency == pytest.approx(1.25e6)
        assert plan.signal_bin == 10
        assert plan.mix_shift == 11
        assert plan.growth_bits == 13

    def test_round_trips_through_json(self, plan):
        from repro.digital import DigitalIfPlan

        rebuilt = DigitalIfPlan.from_dict(json.loads(
            json.dumps(plan.to_dict())))
        assert rebuilt == plan
        assert rebuilt.content_hash() == plan.content_hash()

    def test_content_hash_tracks_digital_and_analog_fields(self, plan):
        different = [
            plan.with_adc_bits((6, 10)),
            digital_if_plan(adc_bits=SMALL_BITS, lo_bits=12),
            digital_if_plan(adc_bits=SMALL_BITS, cic_stages=4),
            # A change to the *analog* stimulus must re-key the cache too.
            digital_if_plan(adc_bits=SMALL_BITS, input_power_dbm=-21.0),
            digital_if_plan(adc_bits=SMALL_BITS, rf_frequency=2.406e9),
        ]
        hashes = {plan.content_hash()} | {p.content_hash()
                                          for p in different}
        assert len(hashes) == 1 + len(different)

    def test_validation_refuses_corrupting_configurations(self):
        with pytest.raises(ValueError, match="divide the analog record"):
            digital_if_plan(adc_stride=63)
        with pytest.raises(ValueError, match="must divide the"):
            digital_if_plan(cic_decimation=21)
        with pytest.raises(ValueError, match="exact-arithmetic budget"):
            digital_if_plan(adc_bits=(32,), guard_bits=15, cic_stages=5,
                            cic_decimation=20, lo_bits=16)
        with pytest.raises(ValueError, match="not representable"):
            digital_if_plan(nco_frequency_hz=3.75e6 + 0.3)
        with pytest.raises(ValueError, match="distinct"):
            digital_if_plan(adc_bits=(8, 8))


class TestDigitalIfRunner:
    def test_axes_shape_and_sensible_curve(self, design, plan):
        result = DigitalIfRunner(design).run(plan)
        assert [axis.name for axis in result.axes] == \
            ["design", "mode", BITS_AXIS]
        assert result.shape == (1, 2, len(SMALL_BITS))
        bits, snr = result.bits_curve("snr_db", mode=MixerMode.ACTIVE)
        assert np.array_equal(bits, np.asarray(SMALL_BITS, dtype=float))
        # Quantization-limited region: ~6 dB per added bit, monotone.
        assert np.all(np.diff(snr) > 0)
        assert snr[1] - snr[0] > 3.0 * (SMALL_BITS[1] - SMALL_BITS[0])

    def test_multi_width_plan_matches_single_width_runs(self, design, plan):
        """The broadcast bits axis is bit-identical to per-width runs."""
        runner = DigitalIfRunner(design)
        batched = runner.run(plan)
        for width in SMALL_BITS:
            solo = DigitalIfRunner(design).run(plan.with_adc_bits((width,)))
            for measure in plan.measures:
                assert batched.value(measure, mode=MixerMode.PASSIVE,
                                     adc_bits=width) == \
                    solo.value(measure, mode=MixerMode.PASSIVE)

    def test_cell_independent_of_population(self, design, plan):
        rng = np.random.default_rng(5)
        other = sample_design(design, rng, DeviceSpread(), "dig-pop")
        solo = DigitalIfRunner(design).run(plan)
        population = DigitalIfRunner(design).run(
            plan, designs={"nominal": design, "other": other})
        for measure in plan.measures:
            assert np.array_equal(
                solo.values(measure, design="nominal"),
                population.values(measure, design="nominal"))

    def test_round_trip_preserves_subclass_and_bits(self, design, plan):
        result = DigitalIfRunner(design).run(plan, modes=[MixerMode.ACTIVE])
        rebuilt = DigitalResult.from_dict(json.loads(
            json.dumps(result.to_dict())))
        assert isinstance(rebuilt, DigitalResult)
        for measure in plan.measures:
            assert np.array_equal(rebuilt.data[measure], result.data[measure])

    def test_rejects_non_plans(self, design):
        with pytest.raises(TypeError, match="DigitalIfPlan"):
            DigitalIfRunner(design).run(plan="digital")


class TestDigitalCache:
    def test_warm_run_performs_zero_quantization_passes(self, design, plan,
                                                        tmp_path):
        cold = DigitalIfRunner(design, cache=str(tmp_path))
        first = cold.run(plan)
        assert cold.cache.stores == 2  # one entry per mode
        before = digital_pass_count()
        warm = DigitalIfRunner(design, cache=str(tmp_path))
        second = warm.run(plan)
        assert digital_pass_count() == before
        assert warm.cache.hits == 2
        for measure in plan.measures:
            assert np.array_equal(first.data[measure], second.data[measure])

    def test_different_plan_misses(self, design, plan, tmp_path):
        runner = DigitalIfRunner(design, cache=str(tmp_path))
        runner.run(plan, modes=[MixerMode.ACTIVE])
        before = digital_pass_count()
        runner.run(plan.with_adc_bits((6, 10)), modes=[MixerMode.ACTIVE])
        assert digital_pass_count() == before + 1

    def test_corrupt_entry_degrades_to_recompute(self, design, plan,
                                                 tmp_path):
        cache = DigitalIfCache(tmp_path)
        runner = DigitalIfRunner(design, cache=cache)
        result = runner.run(plan, modes=[MixerMode.PASSIVE])
        entry = cache.entry_path(design, MixerMode.PASSIVE, plan)
        entry.write_text("{not json", encoding="utf-8")
        again = DigitalIfRunner(design, cache=cache).run(
            plan, modes=[MixerMode.PASSIVE])
        assert cache.corrupt == 1
        for measure in plan.measures:
            assert np.array_equal(result.data[measure], again.data[measure])
        assert json.loads(entry.read_text(encoding="utf-8"))

    def test_kill_switch_and_resolver(self, tmp_path, monkeypatch):
        from repro.sweep.cache import SpecCache

        resolved = resolve_digital_cache(SpecCache(tmp_path))
        assert isinstance(resolved, DigitalIfCache)
        assert resolved.directory == tmp_path
        with pytest.raises(TypeError, match="cache"):
            resolve_digital_cache(1.5)
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert resolve_digital_cache(str(tmp_path)) is None
        assert resolve_digital_cache(True) is None

    def test_store_rejects_incomplete_measures(self, design, plan, tmp_path):
        cache = DigitalIfCache(tmp_path)
        with pytest.raises(ValueError, match="missing"):
            cache.store(design, MixerMode.ACTIVE, plan,
                        {"snr_db": np.zeros(len(SMALL_BITS))})


class TestParallelDigitalRunner:
    def test_sharded_run_is_bit_identical(self, design, plan):
        rng = np.random.default_rng(11)
        population = {f"dig-{i}": sample_design(design, rng, DeviceSpread(),
                                                f"dig-{i}")
                      for i in range(4)}
        inline = DigitalIfRunner(design).run(plan, designs=population)
        sharded = ParallelDigitalRunner(design, workers=2).run(
            plan, designs=population)
        assert isinstance(sharded, DigitalResult)
        assert [a.values for a in sharded.axes] == \
            [a.values for a in inline.axes]
        for measure in plan.measures:
            assert np.array_equal(inline.data[measure],
                                  sharded.data[measure])

    def test_make_runner_selection(self, design):
        assert isinstance(make_digital_runner(design), DigitalIfRunner)
        assert isinstance(make_digital_runner(design, workers=1),
                          DigitalIfRunner)
        assert isinstance(make_digital_runner(design, workers=2),
                          ParallelDigitalRunner)
        with pytest.raises(ValueError, match="workers"):
            ParallelDigitalRunner(design, workers=0)


class TestDigitalExperiments:
    @pytest.fixture(scope="class")
    def population(self, design):
        rng = np.random.default_rng(23)
        return {"nominal": design,
                "corner": sample_design(design, rng, DeviceSpread(),
                                        "corner")}

    def test_digital_if_experiment_shape(self, design):
        from repro.experiments import run_digital_if
        from repro.experiments.digital_if import format_report

        result = run_digital_if(design, adc_bits=SMALL_BITS)
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            panel = result.for_mode(mode)
            assert panel.adc_bits.tolist() == list(SMALL_BITS)
            assert np.all(np.diff(panel.snr_db) > 0)
            assert np.all(panel.overflow_fraction == 0.0)
            assert panel.peak_snr_db == panel.snr_db[-1]
            # The 6-bit point is ADC-limited, the 14-bit one is not (the
            # 16-bit NCO/LO floor takes over around 60 dB SNR).
            assert panel.quantization_limited_bits[0]
            assert panel.enob[-1] > 8.0
        assert "SNR" in format_report(result)

    def test_sweep_digital_if_matches_solo(self, population):
        from repro.experiments import run_digital_if, sweep_digital_if

        batch = sweep_digital_if(population, adc_bits=SMALL_BITS)
        for label, record in population.items():
            solo = run_digital_if(record, adc_bits=SMALL_BITS)
            for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
                assert np.array_equal(batch[label].for_mode(mode).snr_db,
                                      solo.for_mode(mode).snr_db)
                assert np.array_equal(batch[label].for_mode(mode).noise_dbm,
                                      solo.for_mode(mode).noise_dbm)
            assert batch[label].plan_hash == solo.plan_hash

    def test_digital_if_warm_cache_skips_passes_and_solves(self, design,
                                                           tmp_path):
        from repro.core.transconductance import sizing_solve_count
        from repro.experiments import run_digital_if

        first = run_digital_if(design, adc_bits=SMALL_BITS,
                               cache=str(tmp_path))
        passes = digital_pass_count()
        solves = sizing_solve_count()
        again = run_digital_if(design, adc_bits=SMALL_BITS,
                               cache=str(tmp_path))
        assert digital_pass_count() == passes
        assert sizing_solve_count() == solves
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            assert np.array_equal(first.for_mode(mode).snr_db,
                                  again.for_mode(mode).snr_db)

    def test_bits_floor_finds_finite_minima(self, design):
        from repro.experiments import run_bits_floor
        from repro.experiments.bits_floor import format_report

        result = run_bits_floor(design,
                                adc_candidates=(10, 12, 14, 16),
                                lo_candidates=(8, 12),
                                output_candidates=(16, 20))
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            panel = result.for_mode(mode)
            assert panel.achievable
            assert panel.min_adc_bits in (10, 12, 14, 16)
            assert panel.threshold_dbm == \
                pytest.approx(panel.analog_floor_dbm - panel.margin_db)
            # Noise falls (or floors) as the converter widens.
            assert panel.noise_dbm_vs_adc[0] >= panel.noise_dbm_vs_adc[-1]
        assert "width" in format_report(result).lower()

    def test_registry_serves_both_digital_experiments(self, registry):
        names = set(registry.names())
        assert {"digital_if", "bits_floor"} <= names


class TestDigitalYieldTargets:
    def test_digital_target_scores_and_is_deterministic(self):
        from repro.optimize import SpecTarget, run_yield_opt

        targets = [SpecTarget("digital_snr_db", MixerMode.ACTIVE,
                              minimum=50.0)]
        first = run_yield_opt(targets=targets, population=2, iterations=1,
                              num_samples=2)
        second = run_yield_opt(targets=targets, population=2, iterations=1,
                               num_samples=2)
        assert first.best_fingerprint() == second.best_fingerprint()
        assert set(first.best_spec_yields) == {"active:digital_snr_db"}
        assert 0.0 <= first.best_yield <= 1.0

    def test_mixed_targets_combine_three_engines(self):
        from repro.optimize import SpecTarget, run_yield_opt

        targets = [SpecTarget("conversion_gain_db", MixerMode.ACTIVE,
                              minimum=28.0),
                   SpecTarget("waveform_iip3_dbm", MixerMode.ACTIVE,
                              minimum=-13.0),
                   SpecTarget("digital_snr_db", MixerMode.ACTIVE,
                              minimum=50.0)]
        result = run_yield_opt(targets=targets, population=2, iterations=1,
                               num_samples=2)
        assert set(result.best_spec_yields) == \
            {"active:conversion_gain_db", "active:waveform_iip3_dbm",
             "active:digital_snr_db"}

    def test_off_grid_operating_point_rejected(self):
        from dataclasses import replace

        from repro.core.config import MixerDesign
        from repro.optimize import SpecTarget, run_yield_opt

        off_grid = replace(MixerDesign(), if_frequency=5.5e6 + 137.0)
        with pytest.raises(ValueError, match="digital-IF plan"):
            run_yield_opt(design=off_grid,
                          targets=[SpecTarget("digital_snr_db",
                                              MixerMode.ACTIVE,
                                              minimum=50.0)],
                          population=2, iterations=1, num_samples=2)
