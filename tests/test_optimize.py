"""Tests for the corner-aware yield optimiser (repro.optimize).

The load-bearing guarantees, straight from the acceptance bar:

* same seed + targets => **identical best-design fingerprint** for any
  worker count, and through the HTTP and CLI surfaces;
* the best-so-far yield history is monotone (the incumbent is never lost)
  and every reported yield is consistent with its candidate score card;
* targets parse/validate symmetrically between their typed and wire forms,
  so a search is expressible identically from every surface.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.api import MixerService, SpecRequest, decode, encode
from repro.cli import main as cli_main
from repro.core.config import MixerDesign, MixerMode
from repro.optimize import (
    DEFAULT_KNOBS,
    SpecTarget,
    YieldRequest,
    default_targets,
    parse_targets,
    run_yield_opt,
)
from repro.optimize.search import format_report
from repro.serve import create_server, serve_in_thread

from api_test_helpers import ACTIVE_TARGETS

#: Active-mode-only tiny search shared by the determinism tests: 3
#: candidates x 2 iterations x 4 corners, one mode — fast enough to run
#: several times per module.
TINY = dict(population=3, iterations=2, num_samples=4,
            targets=ACTIVE_TARGETS)


@pytest.fixture(scope="module")
def tiny_result():
    return run_yield_opt(**TINY)


class TestTargets:
    def test_default_targets_cover_both_modes(self):
        targets = default_targets()
        modes = {target.mode for target in targets}
        assert modes == {MixerMode.ACTIVE, MixerMode.PASSIVE}
        assert all(target.minimum is not None or target.maximum is not None
                   for target in targets)

    def test_wire_round_trip(self):
        target = SpecTarget("iip3_dbm", MixerMode.PASSIVE, minimum=6.0)
        rebuilt = SpecTarget.from_wire(json.loads(json.dumps(
            target.to_wire())))
        assert rebuilt == target
        assert rebuilt.key == "passive:iip3_dbm"

    def test_parse_accepts_mixed_forms(self):
        parsed = parse_targets([
            SpecTarget("power_mw", MixerMode.ACTIVE, maximum=9.9),
            ["conversion_gain_db", "active", 28.9, None],
        ])
        assert [target.key for target in parsed] == \
            ["active:power_mw", "active:conversion_gain_db"]

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_targets([["power_mw", "active", None, 9.9],
                           ["power_mw", "active", None, 9.5]])

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown spec"):
            SpecTarget("gain", MixerMode.ACTIVE, minimum=0.0)

    def test_unbounded_target_rejected(self):
        with pytest.raises(ValueError, match="minimum and/or a maximum"):
            SpecTarget("power_mw", MixerMode.ACTIVE)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="minimum > maximum"):
            SpecTarget("power_mw", MixerMode.ACTIVE, minimum=10.0,
                       maximum=9.0)

    def test_passes_is_inclusive(self):
        target = SpecTarget("power_mw", MixerMode.ACTIVE, minimum=1.0,
                            maximum=2.0)
        mask = target.passes(np.array([0.5, 1.0, 1.5, 2.0, 2.5]))
        assert mask.tolist() == [False, True, True, True, False]


class TestSearchValidation:
    def test_population_floor(self):
        with pytest.raises(ValueError, match="population"):
            run_yield_opt(population=1, **{k: v for k, v in TINY.items()
                                           if k != "population"})

    def test_unsearchable_knob_rejected(self):
        with pytest.raises(ValueError, match="unsearchable"):
            run_yield_opt(knobs=["lo_frequency"], **TINY)

    def test_duplicate_knob_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_yield_opt(knobs=["tca_gm", "tca_gm"], **TINY)

    def test_bad_shrink_rejected(self):
        with pytest.raises(ValueError, match="shrink"):
            run_yield_opt(shrink=0.0, **TINY)


class TestSearchBehaviour:
    def test_baseline_is_the_incoming_design(self, tiny_result):
        first = tiny_result.candidates[0]
        assert first.label == "i00-c00"
        assert first.design_fingerprint == \
            tiny_result.initial_design.fingerprint()
        assert tiny_result.baseline_yield == first.overall_yield

    def test_history_is_monotone_best_so_far(self, tiny_result):
        history = tiny_result.history
        assert len(history) == tiny_result.iterations
        assert np.all(np.diff(history) >= 0)
        assert history[-1] == tiny_result.best_yield
        assert tiny_result.best_yield >= tiny_result.baseline_yield

    def test_best_matches_its_candidate_score_card(self, tiny_result):
        by_label = {candidate.label: candidate
                    for candidate in tiny_result.candidates}
        best = by_label[tiny_result.best_label]
        assert best.overall_yield == tiny_result.best_yield
        assert best.spec_yields == tiny_result.best_spec_yields
        assert best.design_fingerprint == tiny_result.best_fingerprint()

    def test_overall_yield_bounded_by_spec_yields(self, tiny_result):
        for candidate in tiny_result.candidates:
            assert 0.0 <= candidate.overall_yield <= 1.0
            assert candidate.overall_yield <= \
                min(candidate.spec_yields.values()) + 1e-12

    def test_evaluation_count(self, tiny_result):
        assert tiny_result.evaluations == \
            tiny_result.population * tiny_result.iterations * \
            tiny_result.num_samples
        assert len(tiny_result.candidates) == \
            tiny_result.population * tiny_result.iterations

    def test_report_names_every_target(self, tiny_result):
        report = format_report(tiny_result)
        for target in tiny_result.targets:
            assert target.key in report
        assert "baseline" in report and "knob shifts" in report

    def test_default_knobs_move_in_search(self, tiny_result):
        shifts = tiny_result.knob_shifts()
        assert set(shifts) == set(DEFAULT_KNOBS)


class TestDeterminism:
    def test_worker_count_does_not_change_the_answer(self, tiny_result):
        sharded = run_yield_opt(workers=2, **TINY)
        assert sharded.best_fingerprint() == tiny_result.best_fingerprint()
        assert sharded.best_yield == tiny_result.best_yield
        assert encode(sharded) == encode(tiny_result)

    def test_seed_changes_the_proposals(self, tiny_result):
        reseeded = run_yield_opt(seed=7, **TINY)
        proposed = {candidate.design_fingerprint
                    for candidate in reseeded.candidates[1:]}
        original = {candidate.design_fingerprint
                    for candidate in tiny_result.candidates[1:]}
        assert proposed != original

    def test_spec_cache_does_not_change_the_answer(self, tiny_result,
                                                   tmp_path):
        cold = run_yield_opt(cache=str(tmp_path), **TINY)
        warm = run_yield_opt(cache=str(tmp_path), **TINY)
        assert encode(cold) == encode(tiny_result)
        assert encode(warm) == encode(tiny_result)


class TestSurfaces:
    @pytest.fixture(scope="class")
    def base_url(self):
        server = create_server()
        thread = serve_in_thread(server)
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_deprecated_yield_request_shim_is_wire_identical(self, registry):
        # The retired side-door must keep converting old callers exactly:
        # same wire dict, same request key, same response-cache entry.
        with pytest.warns(DeprecationWarning, match="YieldRequest"):
            typed = YieldRequest(**TINY).to_spec_request()
        bare = SpecRequest(experiment="yield_opt", grid=dict(TINY))
        spec = registry.get("yield_opt")
        assert typed.to_dict() == bare.to_dict()
        assert typed.request_key(spec) == bare.request_key(spec)

    def test_http_returns_the_same_best_fingerprint(self, base_url,
                                                    tiny_result):
        request = SpecRequest(experiment="yield_opt", grid=dict(TINY))
        body = json.dumps(request.to_dict()).encode("utf-8")
        http_request = urllib.request.Request(
            base_url + "/v1/spec", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(http_request, timeout=300) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["result"] == json.loads(json.dumps(
            encode(tiny_result)))
        served = decode(payload["result"])
        assert isinstance(served.best_design, MixerDesign)
        assert served.best_fingerprint() == tiny_result.best_fingerprint()

    def test_cli_returns_the_same_best_fingerprint(self, capsys,
                                                   tiny_result):
        assert cli_main([
            "run", "yield_opt",
            "--grid", "population=3",
            "--grid", "iterations=2",
            "--grid", "num_samples=4",
            "--grid", f"targets={json.dumps(ACTIVE_TARGETS)}",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == encode(tiny_result)
        service = MixerService(response_cache=False)
        response = service.submit(SpecRequest(experiment="yield_opt",
                                              grid=dict(TINY)))
        assert payload["result"] == response.result_payload
        assert response.result.best_fingerprint() == \
            tiny_result.best_fingerprint()
