"""Tests for the reconfigurable mixer itself, its config and the front end."""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import (
    MixerDesign,
    MixerMode,
    PAPER_TARGETS_ACTIVE,
    PAPER_TARGETS_PASSIVE,
    default_design,
    paper_targets,
)
from repro.core.frontend import (
    Balun,
    LocalOscillator,
    LowNoiseAmplifier,
    WidebandReceiverFrontEnd,
)
from repro.core.reconfigurable_mixer import ReconfigurableMixer


class TestConfig:
    def test_default_design_validates(self):
        design = default_design()
        assert design.vdd == pytest.approx(1.2)
        assert design.rf_frequency == pytest.approx(2.405e9)

    def test_mode_vlogic_levels(self):
        assert MixerMode.ACTIVE.vlogic == 1
        assert MixerMode.PASSIVE.vlogic == 0

    def test_invalid_designs_rejected(self):
        with pytest.raises(ValueError):
            MixerDesign(if_frequency=-1.0)
        with pytest.raises(ValueError):
            MixerDesign(if_frequency=3e9)  # IF above LO
        with pytest.raises(ValueError):
            MixerDesign(tca_gm=0.0)
        with pytest.raises(ValueError):
            MixerDesign(degeneration_resistance=-5.0)

    def test_with_lo_and_with_if(self, design):
        retuned = design.with_lo(5.0e9).with_if(10e6)
        assert retuned.lo_frequency == pytest.approx(5.0e9)
        assert retuned.if_frequency == pytest.approx(10e6)
        # The original is unchanged (frozen dataclass semantics).
        assert design.lo_frequency == pytest.approx(2.4e9)

    def test_gain_setting_scales_both_loads(self, design):
        scaled = design.with_gain_setting(2.0)
        assert scaled.load_resistance == pytest.approx(2.0 * design.load_resistance)
        assert scaled.feedback_resistance == pytest.approx(
            2.0 * design.feedback_resistance)
        with pytest.raises(ValueError):
            design.with_gain_setting(0.0)

    def test_paper_targets_lookup(self):
        assert paper_targets(MixerMode.ACTIVE) is PAPER_TARGETS_ACTIVE
        assert paper_targets(MixerMode.PASSIVE) is PAPER_TARGETS_PASSIVE


class TestModeControl:
    def test_set_mode_and_reconfigure(self, design):
        mixer = ReconfigurableMixer(design, MixerMode.ACTIVE)
        assert mixer.vlogic == 1
        new_mode = mixer.reconfigure()
        assert new_mode is MixerMode.PASSIVE
        assert mixer.mode is MixerMode.PASSIVE
        assert mixer.vlogic == 0
        mixer.set_mode(MixerMode.ACTIVE)
        assert mixer.mode is MixerMode.ACTIVE
        with pytest.raises(TypeError):
            mixer.set_mode("active")  # type: ignore[arg-type]

    def test_mode_selects_degeneration(self, design):
        active = ReconfigurableMixer(design, MixerMode.ACTIVE)
        passive = ReconfigurableMixer(design, MixerMode.PASSIVE)
        assert active.transconductor.degeneration_resistance == 0.0
        assert passive.transconductor.degeneration_resistance == \
            design.degeneration_resistance


class TestHeadlineSpecs:
    def test_conversion_gain_matches_paper(self, active_mixer, passive_mixer):
        assert active_mixer.conversion_gain_db() == pytest.approx(
            PAPER_TARGETS_ACTIVE.conversion_gain_db, abs=1.0)
        assert passive_mixer.conversion_gain_db() == pytest.approx(
            PAPER_TARGETS_PASSIVE.conversion_gain_db, abs=1.0)

    def test_noise_figure_matches_paper(self, active_mixer, passive_mixer):
        assert active_mixer.noise_figure_db() == pytest.approx(
            PAPER_TARGETS_ACTIVE.noise_figure_db, abs=1.0)
        assert passive_mixer.noise_figure_db() == pytest.approx(
            PAPER_TARGETS_PASSIVE.noise_figure_db, abs=1.0)

    def test_iip3_matches_paper(self, active_mixer, passive_mixer):
        assert active_mixer.iip3_dbm() == pytest.approx(
            PAPER_TARGETS_ACTIVE.iip3_dbm, abs=2.0)
        assert passive_mixer.iip3_dbm() == pytest.approx(
            PAPER_TARGETS_PASSIVE.iip3_dbm, abs=2.0)

    def test_power_matches_paper(self, active_mixer, passive_mixer):
        assert active_mixer.power_mw() == pytest.approx(
            PAPER_TARGETS_ACTIVE.power_mw, abs=0.05)
        assert passive_mixer.power_mw() == pytest.approx(
            PAPER_TARGETS_PASSIVE.power_mw, abs=0.05)

    def test_trade_off_directions(self, active_mixer, passive_mixer):
        # Fig. 1 of the paper: active wins gain and NF, passive wins linearity.
        assert active_mixer.conversion_gain_db() > passive_mixer.conversion_gain_db()
        assert active_mixer.noise_figure_db() < passive_mixer.noise_figure_db()
        assert passive_mixer.iip3_dbm() > active_mixer.iip3_dbm() + 10.0
        assert passive_mixer.p1db_dbm() > active_mixer.p1db_dbm()

    def test_iip2_above_paper_floor(self, active_mixer, passive_mixer):
        assert active_mixer.iip2_dbm() > 65.0
        assert passive_mixer.iip2_dbm() > 65.0

    def test_band_edges_match_paper(self, active_mixer, passive_mixer):
        a_low, a_high = active_mixer.band_edges()
        p_low, p_high = passive_mixer.band_edges()
        assert a_low == pytest.approx(1.0e9, rel=0.15)
        assert a_high == pytest.approx(5.5e9, rel=0.15)
        assert p_low == pytest.approx(0.5e9, rel=0.15)
        assert p_high == pytest.approx(5.1e9, rel=0.15)

    def test_flicker_corner_claim(self, passive_mixer, active_mixer):
        assert passive_mixer.flicker_corner_hz() < 100e3
        assert active_mixer.flicker_corner_hz() > passive_mixer.flicker_corner_hz()

    def test_specs_aggregate_consistency(self, active_mixer):
        specs = active_mixer.specs()
        assert specs.conversion_gain_db == pytest.approx(
            active_mixer.conversion_gain_db())
        assert specs.mode is MixerMode.ACTIVE
        row = specs.as_table_row()
        assert row["design"] == "This work (active)"
        assert isinstance(row["gain_db"], float)
        low_ghz, high_ghz = specs.bandwidth_ghz
        assert low_ghz < high_ghz


class TestFrequencyBehaviour:
    def test_gain_rolls_off_outside_band(self, active_mixer):
        in_band = active_mixer.conversion_gain_db(2.45e9)
        below = active_mixer.conversion_gain_db(0.2e9)
        above = active_mixer.conversion_gain_db(9e9)
        assert below < in_band - 6.0
        assert above < in_band - 3.0

    def test_gain_rolls_off_at_high_if(self, passive_mixer):
        assert passive_mixer.conversion_gain_db(2.45e9, 80e6) < \
            passive_mixer.conversion_gain_db(2.45e9, 1e6) - 6.0

    def test_noise_figure_rises_at_low_if(self, passive_mixer):
        assert passive_mixer.noise_figure_db(5e3) > \
            passive_mixer.noise_figure_db(5e6) + 3.0

    def test_invalid_frequencies_rejected(self, active_mixer):
        with pytest.raises(ValueError):
            active_mixer.conversion_gain_db(-1.0)
        with pytest.raises(ValueError):
            active_mixer.conversion_gain_db(2.4e9, 0.0)


class TestDesignKnobs:
    def test_gain_scales_with_load_setting(self, design):
        # Compare the in-band peak gains: at the nominal 5 MHz IF the doubled
        # load also moves the IF pole, which is a separate (real) effect.
        base = ReconfigurableMixer(design, MixerMode.ACTIVE).peak_conversion_gain_db()
        doubled = ReconfigurableMixer(design.with_gain_setting(2.0),
                                      MixerMode.ACTIVE).peak_conversion_gain_db()
        assert doubled == pytest.approx(base + 6.0, abs=0.1)

    def test_degeneration_improves_passive_linearity(self, design):
        more_degenerated = replace(design, degeneration_resistance=150.0)
        base = ReconfigurableMixer(design, MixerMode.PASSIVE)
        linear = ReconfigurableMixer(more_degenerated, MixerMode.PASSIVE)
        assert linear.gm_stage_iip3_dbm() > base.gm_stage_iip3_dbm()
        assert linear.conversion_gain_db() < base.conversion_gain_db()

    def test_output_stage_only_limits_active_mode(self, active_mixer, passive_mixer):
        assert math.isfinite(active_mixer.output_stage_iip3_dbm())
        assert math.isinf(passive_mixer.output_stage_iip3_dbm())


class TestFrontEnd:
    def test_cascade_gain_is_sum_of_blocks(self, design):
        front_end = WidebandReceiverFrontEnd(design, MixerMode.ACTIVE)
        cascade = front_end.cascade(2.45e9)
        blocks = front_end.blocks(2.45e9)
        assert cascade.gain_db == pytest.approx(sum(b.gain_db for b in blocks))

    def test_lna_improves_system_noise_figure(self, design):
        with_lna = WidebandReceiverFrontEnd(design, MixerMode.PASSIVE,
                                            include_lna=True)
        without_lna = WidebandReceiverFrontEnd(design, MixerMode.PASSIVE,
                                               include_lna=False)
        assert with_lna.cascade().nf_db < without_lna.cascade().nf_db - 3.0

    def test_mode_switching_through_front_end(self, design):
        front_end = WidebandReceiverFrontEnd(design, MixerMode.ACTIVE)
        active_gain = front_end.cascade().gain_db
        front_end.set_mode(MixerMode.PASSIVE)
        passive_gain = front_end.cascade().gain_db
        assert front_end.mode is MixerMode.PASSIVE
        assert active_gain > passive_gain

    def test_sensitivity_improves_with_narrow_channels(self, design):
        front_end = WidebandReceiverFrontEnd(design, MixerMode.ACTIVE)
        narrow = front_end.sensitivity_dbm(1e6, 8.0)
        wide = front_end.sensitivity_dbm(20e6, 8.0)
        assert narrow < wide  # lower (more negative) is better

    def test_lna_band_rolloff(self):
        lna = LowNoiseAmplifier()
        assert lna.gain_at(2.4e9) > lna.gain_at(0.1e9)
        assert lna.gain_at(2.4e9) > lna.gain_at(20e9)

    def test_balun_split_and_block(self):
        balun = Balun(insertion_loss_db=1.0)
        block = balun.as_block()
        assert block.gain_db == pytest.approx(-1.0)
        plus, minus = balun.split(np.array([1.0]))
        assert plus[0] > 0.0 > minus[0]

    def test_lo_reciprocal_mixing(self):
        lo = LocalOscillator()
        floor = lo.reciprocal_mixing_floor_dbm(blocker_dbm=-30.0, offset_hz=1e6,
                                               channel_bandwidth_hz=1e6)
        assert floor == pytest.approx(-30.0 - 110.0 + 60.0)

    def test_total_power_includes_lna(self, design):
        with_lna = WidebandReceiverFrontEnd(design, MixerMode.ACTIVE,
                                            include_lna=True)
        without = WidebandReceiverFrontEnd(design, MixerMode.ACTIVE,
                                           include_lna=False)
        assert with_lna.total_power_mw() > without.total_power_mw()
