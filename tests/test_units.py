"""Unit tests for repro.units — conversions and small helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import units


class TestDecibels:
    def test_power_ratio_round_trip(self):
        assert units.db_from_power_ratio(100.0) == pytest.approx(20.0)
        assert units.power_ratio_from_db(20.0) == pytest.approx(100.0)

    def test_voltage_ratio_round_trip(self):
        assert units.db_from_voltage_ratio(10.0) == pytest.approx(20.0)
        assert units.voltage_ratio_from_db(20.0) == pytest.approx(10.0)

    def test_db_of_unity_is_zero(self):
        assert units.db_from_power_ratio(1.0) == pytest.approx(0.0)
        assert units.db_from_voltage_ratio(1.0) == pytest.approx(0.0)

    def test_array_inputs(self):
        values = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(units.db_from_power_ratio(values),
                                   [0.0, 10.0, 20.0])


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.watts_from_dbm(0.0) == pytest.approx(1e-3)
        assert units.dbm_from_watts(1e-3) == pytest.approx(0.0)

    def test_vpeak_round_trip(self):
        for dbm in (-40.0, -10.0, 0.0, 10.0):
            v = units.vpeak_from_dbm(dbm)
            assert units.dbm_from_vpeak(v) == pytest.approx(dbm)

    def test_zero_dbm_amplitude_in_50_ohm(self):
        # 1 mW into 50 ohm -> 316.2 mV peak.
        assert units.vpeak_from_dbm(0.0) == pytest.approx(0.3162, abs=1e-3)

    def test_vrms_is_vpeak_over_sqrt2(self):
        assert units.vrms_from_dbm(0.0) * math.sqrt(2.0) == pytest.approx(
            float(units.vpeak_from_dbm(0.0)))

    def test_dbm_from_vrms_matches_vpeak_path(self):
        v_rms = 0.1
        assert units.dbm_from_vrms(v_rms) == pytest.approx(
            float(units.dbm_from_vpeak(v_rms * math.sqrt(2.0))))


class TestFrequencyHelpers:
    def test_si_prefix_scaling(self):
        assert units.ghz(2.4) == pytest.approx(2.4e9)
        assert units.mhz(5.0) == pytest.approx(5e6)
        assert units.khz(100.0) == pytest.approx(1e5)

    def test_format_si(self):
        assert units.format_si(2.4e9, "Hz") == "2.4 GHz"
        assert units.format_si(0.0, "Hz") == "0 Hz"
        assert units.format_si(3.3e-3, "A") == "3.3 mA"

    def test_logspace_endpoints(self):
        grid = units.logspace(1e3, 1e6, 31)
        assert grid[0] == pytest.approx(1e3)
        assert grid[-1] == pytest.approx(1e6)
        assert len(grid) == 31

    def test_logspace_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.logspace(0.0, 1e6, 10)


class TestCircuitHelpers:
    def test_parallel_of_equal_resistors(self):
        assert units.parallel(100.0, 100.0) == pytest.approx(50.0)

    def test_parallel_with_short(self):
        assert units.parallel(100.0, 0.0) == 0.0

    def test_parallel_empty_raises(self):
        with pytest.raises(ValueError):
            units.parallel()

    def test_series_sum(self):
        assert units.series(10.0, 20.0, 30.0) == pytest.approx(60.0)

    def test_thermal_noise_of_50_ohm(self):
        # ~0.91 nV/sqrt(Hz) at 290 K.
        assert units.thermal_noise_voltage_density(50.0) == pytest.approx(
            0.91e-9, rel=0.02)

    def test_thermal_noise_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            units.thermal_noise_voltage_density(-1.0)

    def test_clamp(self):
        assert units.clamp(5.0, 0.0, 1.0) == 1.0
        assert units.clamp(-5.0, 0.0, 1.0) == 0.0
        assert units.clamp(0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            units.clamp(0.0, 2.0, 1.0)

    def test_geometric_mean(self):
        assert units.geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            units.geometric_mean([])
        with pytest.raises(ValueError):
            units.geometric_mean([1.0, -1.0])
