"""Tests for the Table I baseline library."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    BaselineMixer,
    BaselineSpec,
    GilbertCellMixer,
    PassiveCurrentCommutatingMixer,
    VariableGainMixer,
    published_baseline,
    published_references,
)
from repro.baselines.published import PUBLISHED_BASELINES, all_published_baselines
from repro.rf.conversion_gain import measure_conversion_gain


class TestPublishedDatabase:
    def test_all_eight_references_present(self):
        assert len(published_references()) == 8
        assert set(published_references()) == set(PUBLISHED_BASELINES)

    def test_table_values_transcribed(self):
        # Spot-check a few cells against the paper's Table I.
        assert PUBLISHED_BASELINES["[2]"].gain_db == pytest.approx(14.5)
        assert PUBLISHED_BASELINES["[2]"].nf_db == pytest.approx(6.5)
        assert PUBLISHED_BASELINES["[2]"].iip3_dbm is None
        assert PUBLISHED_BASELINES["[4]"].gain_db == pytest.approx(35.0)
        assert PUBLISHED_BASELINES["[4]"].power_mw == pytest.approx(20.25)
        assert PUBLISHED_BASELINES["[5]"].technology == "180nm"
        assert PUBLISHED_BASELINES["[11]"].band_high_ghz == pytest.approx(12.0)

    def test_unknown_reference_rejected(self):
        with pytest.raises(KeyError):
            published_baseline("[99]")

    def test_rows_have_required_columns(self):
        for baseline in all_published_baselines():
            row = baseline.spec.as_table_row()
            for key in ("design", "gain_db", "power_mw", "technology"):
                assert key in row

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BaselineSpec("[x]", "bad band", 10.0, 5.0, 0.0, None, 10.0,
                         band_low_ghz=2.0, band_high_ghz=1.0,
                         technology="65nm", supply_v=1.2)
        with pytest.raises(ValueError):
            BaselineSpec("[x]", "bad power", 10.0, 5.0, 0.0, None, 0.0,
                         band_low_ghz=1.0, band_high_ghz=2.0,
                         technology="65nm", supply_v=1.2)


class TestBaselineMixerBehaviour:
    def test_gain_rolls_off_outside_published_band(self):
        baseline = published_baseline("[5]")   # 0.7-2.3 GHz
        in_band = baseline.conversion_gain_db(1.5e9)
        out_low = baseline.conversion_gain_db(0.1e9)
        out_high = baseline.conversion_gain_db(8e9)
        assert in_band > out_low + 6.0
        assert in_band > out_high + 6.0

    def test_missing_nf_raises(self):
        baseline = published_baseline("[10]")
        with pytest.raises(ValueError):
            baseline.noise_figure_db()

    def test_p1db_falls_back_to_iip3_rule(self):
        baseline = published_baseline("[3]")  # no published P1dB, has IIP3
        assert baseline.p1db_dbm() == pytest.approx(10.8 - 9.6)

    def test_figure_of_merit_ranks_sensible(self):
        # [4] has huge gain but also huge power; [11] is lean.
        fom_4 = published_baseline("[4]").figure_of_merit()
        fom_11 = published_baseline("[11]").figure_of_merit()
        assert fom_11 > fom_4 - 30.0  # both finite and comparable in magnitude

    def test_waveform_device_reproduces_published_gain(self):
        baseline = published_baseline("[5]")
        fs, n = 10.24e9, 10240
        device = baseline.waveform_device(fs, lo_frequency=2.0e9)
        measured = measure_conversion_gain(device, 2.005e9, 5e6, -40.0, fs, n)
        assert measured == pytest.approx(baseline.spec.gain_db, abs=0.5)

    def test_waveform_device_validates_inputs(self):
        baseline = published_baseline("[5]")
        with pytest.raises(ValueError):
            baseline.waveform_device(-1.0, 2e9)
        with pytest.raises(ValueError):
            baseline.waveform_device(1e9, 2e9)

    def test_waveform_device_accepts_batched_records(self):
        """Baseline devices honour the last-axis-is-time transfer contract
        the batched benches feed (regression: they used to crash on a
        (powers, samples) block)."""
        import numpy as np

        from repro.rf.compression import measure_compression_point
        from repro.rf.signal import Tone, sample_times

        baseline = published_baseline("[5]")
        fs, n = 10.24e9, 10240
        device = baseline.waveform_device(fs, lo_frequency=2.0e9)
        times = sample_times(fs, n)
        rows = np.stack([Tone(2.005e9, power).waveform(times)
                         for power in (-40.0, -30.0)])
        batched = device(rows)
        assert batched.shape == rows.shape
        assert np.array_equal(batched[0], device(rows[0]))
        # The rewired batched bench runs end to end on a baseline device.
        result = measure_compression_point(
            device, 2.005e9, np.arange(-40.0, -20.0, 4.0), fs, n,
            output_frequency=5e6)
        assert result.gains_db.shape == (5,)


class TestParameterisedBaselines:
    def test_gilbert_cell_derivations(self):
        gilbert = GilbertCellMixer()
        assert gilbert.conversion_gain_db() == pytest.approx(
            20.0 * math.log10((2.0 / math.pi) * 15e-3 * 3.3e3), abs=0.01)
        assert 4.0 < gilbert.noise_figure_db() < 12.0
        assert gilbert.power_mw() == pytest.approx(7.8 * 1.2, rel=1e-6)
        spec = gilbert.as_spec()
        assert spec.p1db_dbm == pytest.approx(spec.iip3_dbm - 9.6)
        assert isinstance(gilbert.as_baseline(), BaselineMixer)

    def test_passive_baseline_degeneration_tradeoff(self):
        weak = PassiveCurrentCommutatingMixer(degeneration_resistance=0.0)
        strong = PassiveCurrentCommutatingMixer(degeneration_resistance=100.0)
        assert strong.iip3_dbm() > weak.iip3_dbm()
        assert strong.conversion_gain_db() < weak.conversion_gain_db()
        assert strong.noise_figure_db() > weak.noise_figure_db()

    def test_passive_baseline_is_more_linear_than_gilbert(self):
        gilbert = GilbertCellMixer()
        passive = PassiveCurrentCommutatingMixer()
        assert passive.iip3_dbm() > gilbert.iip3_dbm()

    def test_variable_gain_mixer_settings(self):
        vg = VariableGainMixer()
        settings = vg.gain_settings(4)
        assert settings[0] == pytest.approx(vg.min_gain_db)
        assert settings[-1] == pytest.approx(vg.max_gain_db)
        # NF degrades and IIP3 only partially recovers as gain steps down.
        assert vg.nf_at(vg.min_gain_db) > vg.nf_at(vg.max_gain_db)
        assert vg.iip3_at(vg.min_gain_db) > vg.iip3_at(vg.max_gain_db)
        recovered = vg.iip3_at(vg.min_gain_db) - vg.iip3_at(vg.max_gain_db)
        given_up = vg.max_gain_db - vg.min_gain_db
        assert recovered < given_up

    def test_variable_gain_mixer_shortfall(self):
        vg = VariableGainMixer()
        assert vg.linearity_shortfall_vs(required_iip3_dbm=10.0) > 0.0
        assert vg.linearity_shortfall_vs(required_iip3_dbm=-30.0) == 0.0
        with pytest.raises(ValueError):
            vg.iip3_at(vg.max_gain_db + 5.0)
        with pytest.raises(ValueError):
            vg.gain_settings(1)
