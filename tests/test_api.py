"""Tests for the unified spec-service API (registry, requests, service).

The load-bearing guarantees, straight from the acceptance bar:

* every registered experiment answers through :class:`MixerService` with a
  payload **bit-identical** to the direct ``run_*`` call (in-process here;
  the HTTP side of the same guarantee lives in ``tests/test_serve.py``);
* a repeated identical request is served from the response cache with
  **zero sizing bisections** (``sizing_solve_count()`` stands still);
* design payloads round-trip exactly — ``MixerDesign.fingerprint()`` is
  preserved bit-for-bit through ``to_dict -> json -> from_dict``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.api import (
    MixerService,
    RequestValidationError,
    ResponseCache,
    SpecRequest,
    SpecResponse,
)
from repro.core.config import MixerDesign, MixerMode
from repro.core.transconductance import sizing_solve_count
from repro.experiments import run_fig8, sweep_fig8
from repro.sweep.montecarlo import DeviceSpread, sample_design

from api_test_helpers import EXPERIMENT_NAMES, SMALL_GRIDS, small_request


@pytest.fixture(scope="module")
def service():
    """One shared service so cache behaviour across tests is realistic."""
    return MixerService()


class TestRegistry:
    def test_all_ten_experiments_registered(self, registry):
        assert sorted(registry.names()) == EXPERIMENT_NAMES

    def test_describe_is_json_ready(self, registry):
        for spec in registry:
            payload = json.loads(json.dumps(spec.describe()))
            assert payload["name"] == spec.name
            assert payload["result_schema"] == spec.result_type.__name__
            assert set(payload["default_grid"]) == set(spec.default_grid)

    def test_unknown_experiment_names_the_known_ones(self, registry):
        with pytest.raises(KeyError, match="fig8"):
            registry.get("fig99")

    def test_engine_backed_experiments_are_batchable(self, registry):
        batchable = {spec.name for spec in registry
                     if spec.batch_runner is not None}
        assert batchable == {"fig8", "fig9", "table1",
                             "fig10", "iip2", "p1db",
                             "digital_if", "bits_floor"}

    def test_circuit_checks_reject_engine_options(self, registry):
        # The waveform benches now ride the engines (workers/cache apply);
        # only the point circuit-level checks still reject the options.
        for name in ("power_budget", "tia_response", "ablation"):
            spec = registry.get(name)
            assert not spec.accepts_workers and not spec.accepts_cache
        for name in ("fig10", "iip2", "p1db"):
            spec = registry.get(name)
            assert spec.accepts_workers and spec.accepts_cache


class TestRequestValidation:
    def test_unknown_experiment(self, service):
        with pytest.raises(RequestValidationError, match="unknown experiment"):
            service.submit(SpecRequest(experiment="fig99"))

    def test_unknown_grid_parameter(self, service):
        with pytest.raises(RequestValidationError, match="unknown grid"):
            service.submit(SpecRequest(experiment="fig8",
                                       grid={"rf_points": 10}))

    def test_workers_rejected_where_not_accepted(self, service):
        with pytest.raises(RequestValidationError, match="workers"):
            service.submit(SpecRequest(experiment="power_budget", workers=2))

    def test_request_round_trips_through_json(self, registry):
        request = SpecRequest(experiment="fig8",
                              design=MixerDesign().with_lo(2.0e9),
                              grid={"points": 32}, workers=2)
        rebuilt = SpecRequest.from_dict(json.loads(
            json.dumps(request.to_dict())))
        spec = registry.get("fig8")
        assert rebuilt.request_key(spec) == request.request_key(spec)
        assert rebuilt.design == request.design

    def test_request_key_ignores_execution_options(self, registry):
        spec = registry.get("fig8")
        base = SpecRequest(experiment="fig8", grid={"points": 32})
        tuned = SpecRequest(experiment="fig8", grid={"points": 32},
                            workers=4, cache=True)
        assert base.request_key(spec) == tuned.request_key(spec)

    def test_from_dict_rejects_non_wire_cache_values(self):
        with pytest.raises(RequestValidationError, match="cache"):
            SpecRequest.from_dict({"experiment": "fig8", "cache": [1]})
        assert SpecRequest.from_dict(
            {"experiment": "fig8", "cache": True}).cache is True

    def test_request_key_tracks_design_and_grid(self, registry):
        spec = registry.get("fig8")
        base = SpecRequest(experiment="fig8", grid={"points": 32})
        other_grid = SpecRequest(experiment="fig8", grid={"points": 33})
        other_design = SpecRequest(
            experiment="fig8", grid={"points": 32},
            design=replace(MixerDesign(), load_resistance=3.5e3))
        assert base.request_key(spec) != other_grid.request_key(spec)
        assert base.request_key(spec) != other_design.request_key(spec)


class TestServiceBitIdentity:
    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_response_matches_direct_run(self, name, service,
                                         direct_payloads):
        response = service.submit(small_request(name))
        assert response.result_payload == direct_payloads(name)
        assert response.design_fingerprint == MixerDesign().fingerprint()
        assert response.result_schema == type(response.result).__name__

    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_repeat_is_cached_with_zero_sizing_solves(self, name, service):
        first = service.submit(small_request(name))
        before = sizing_solve_count()
        again = service.submit(small_request(name))
        assert sizing_solve_count() == before
        assert again.cached and again.source == "memory-cache"
        assert again.result_payload == first.result_payload

    def test_result_decodes_to_the_driver_dataclass(self, service):
        response = service.submit(small_request("fig8"))
        result = response.result
        assert isinstance(result.rf_frequencies_hz, np.ndarray)
        direct = run_fig8(**SMALL_GRIDS["fig8"])
        assert result.peak_gain_db(MixerMode.ACTIVE) == \
            direct.peak_gain_db(MixerMode.ACTIVE)

    def test_report_matches_driver_report(self, service, registry):
        from repro.experiments.fig8_gain_vs_rf import format_report
        response = service.submit(small_request("fig8"))
        assert service.report(response) == \
            format_report(run_fig8(**SMALL_GRIDS["fig8"]))


class TestResponseCache:
    def test_lru_evicts_least_recent(self):
        cache = ResponseCache(lru_size=2)
        for key in ("a", "b", "c"):
            cache.store(key, {"request_key": key})
        assert cache.memory_size == 2
        assert cache.load("a") is None
        entry, tier = cache.load("c")
        assert tier == "memory" and entry["request_key"] == "c"

    def test_disk_tier_survives_a_new_instance(self, tmp_path):
        ResponseCache(tmp_path).store("k", {"request_key": "k", "x": 1.5})
        entry, tier = ResponseCache(tmp_path).load("k")
        assert tier == "disk" and entry["x"] == 1.5

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResponseCache(tmp_path)
        cache.store("k", {"request_key": "k"})
        cache.clear_memory()
        (tmp_path / "k.json").write_text("{not json", encoding="utf-8")
        assert cache.load("k") is None
        assert cache.corrupt == 1

    def test_key_mismatch_rejected_on_store(self, tmp_path):
        with pytest.raises(ValueError, match="request_key"):
            ResponseCache(tmp_path).store("k", {"request_key": "other"})

    def test_disk_cache_serves_new_service_with_zero_solves(self, tmp_path):
        request = small_request("table1")
        MixerService(response_cache=str(tmp_path)).submit(request)
        fresh = MixerService(response_cache=str(tmp_path))
        before = sizing_solve_count()
        response = fresh.submit(request)
        assert sizing_solve_count() == before
        assert response.source == "disk-cache"

    def test_response_cache_off(self):
        service = MixerService(response_cache=False)
        first = service.submit(small_request("power_budget"))
        again = service.submit(small_request("power_budget"))
        assert not first.cached and not again.cached


class TestBatchSubmission:
    @pytest.fixture(scope="class")
    def population(self):
        rng = np.random.default_rng(7)
        nominal = MixerDesign()
        return [sample_design(nominal, rng, DeviceSpread(), f"api-{i}")
                for i in range(3)]

    def test_batch_fig8_matches_individual_submits(self, population):
        requests = [small_request("fig8", design) for design in population]
        batch = MixerService().submit_batch(requests)
        solo = [MixerService(response_cache=False).submit(request)
                for request in requests]
        assert [r.result_payload for r in batch] == \
            [r.result_payload for r in solo]

    def test_batch_table1_matches_individual_submits(self, population):
        requests = [small_request("table1", design) for design in population]
        batch = MixerService().submit_batch(requests)
        solo = [MixerService(response_cache=False).submit(request)
                for request in requests]
        assert [r.result_payload for r in batch] == \
            [r.result_payload for r in solo]

    def test_batch_mixes_cached_and_computed(self, population):
        service = MixerService()
        warmed = service.submit(small_request("fig8", population[0]))
        responses = service.submit_batch(
            [small_request("fig8", design) for design in population])
        assert responses[0].cached
        assert responses[0].result_payload == warmed.result_payload
        assert not responses[1].cached and not responses[2].cached

    def test_batch_honours_per_request_options(self, population, tmp_path):
        # Requests with different execution options land in different
        # groups; the one asking for a spec cache actually populates it.
        requests = [small_request("fig8", population[0]),
                    SpecRequest(experiment="fig8", design=population[1],
                                grid=SMALL_GRIDS["fig8"],
                                cache=str(tmp_path))]
        responses = MixerService().submit_batch(requests)
        solo = [MixerService(response_cache=False).submit(request)
                for request in requests]
        assert [r.result_payload for r in responses] == \
            [r.result_payload for r in solo]
        assert list(tmp_path.glob("*.json")), "spec cache was not used"

    def test_concurrent_stores_of_one_key_do_not_race(self, tmp_path):
        import threading
        cache = ResponseCache(tmp_path)
        errors: list[Exception] = []

        def hammer() -> None:
            try:
                for _ in range(50):
                    cache.store("k", {"request_key": "k", "x": 1.0})
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.load("k") is not None

    def test_batch_falls_back_for_unbatchable_experiments(self, population):
        requests = [small_request("power_budget", design)
                    for design in population[:2]]
        responses = MixerService().submit_batch(requests)
        assert len(responses) == 2
        assert all(r.result_schema == "PowerBudgetResult" for r in responses)

    def test_sweep_fig8_batch_is_bit_identical_to_solo_runs(self, population):
        designs = {f"d{i}": design for i, design in enumerate(population)}
        batch = sweep_fig8(designs, points=24)
        for label, design in designs.items():
            solo = run_fig8(design, points=24)
            assert np.array_equal(batch[label].active_gain_db,
                                  solo.active_gain_db)
            assert np.array_equal(batch[label].passive_gain_db,
                                  solo.passive_gain_db)


class TestBatchAlignment:
    """submit_batch must never return a silently shortened/misaligned list."""

    def _echo_service(self):
        from api_test_helpers import echo_registry
        return MixerService(registry=echo_registry(), response_cache=False)

    def _requests(self, drop_nth: int = -1) -> list[SpecRequest]:
        designs = [MixerDesign(),
                   MixerDesign().with_gain_setting(1.05),
                   MixerDesign().with_gain_setting(1.10)]
        return [SpecRequest(experiment="echo_batch", design=design,
                            grid={"drop_nth": drop_nth})
                for design in designs]

    def test_order_preserved_across_batch_group(self):
        service = self._echo_service()
        requests = self._requests()
        responses = service.submit_batch(requests)
        assert len(responses) == len(requests)
        assert [r.design_fingerprint for r in responses] == \
            [request.design.fingerprint() for request in requests]

    def test_dropped_member_raises_instead_of_misaligning(self):
        service = self._echo_service()
        with pytest.raises(RuntimeError, match="returned no result"):
            service.submit_batch(self._requests(drop_nth=1))


class TestDesignRoundTrip:
    def test_fingerprint_preserved_bit_exactly(self):
        design = MixerDesign()
        rebuilt = MixerDesign.from_dict(json.loads(
            json.dumps(design.to_dict())))
        assert rebuilt == design
        assert rebuilt.fingerprint() == design.fingerprint()

    def test_perturbed_design_round_trips(self):
        rng = np.random.default_rng(3)
        design = sample_design(MixerDesign(), rng, DeviceSpread(), "rt")
        rebuilt = MixerDesign.from_dict(json.loads(
            json.dumps(design.to_dict())))
        assert rebuilt == design
        assert rebuilt.fingerprint() == design.fingerprint()
        assert rebuilt.technology == design.technology

    def test_unknown_field_rejected(self):
        payload = MixerDesign().to_dict()
        payload["not_a_parameter"] = 1.0
        with pytest.raises(ValueError, match="not_a_parameter"):
            MixerDesign.from_dict(payload)

    def test_missing_fields_fall_back_to_defaults(self):
        rebuilt = MixerDesign.from_dict({"load_resistance": 3.5e3})
        assert rebuilt.load_resistance == 3.5e3
        assert rebuilt.technology == MixerDesign().technology

    def test_response_round_trips_through_json(self, service=None):
        service = MixerService()
        response = service.submit(small_request("tia_response"))
        rebuilt = SpecResponse.from_dict(json.loads(
            json.dumps(response.to_dict())))
        assert rebuilt.result_payload == response.result_payload
        assert rebuilt.request_key == response.request_key
