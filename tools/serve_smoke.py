#!/usr/bin/env python3
"""CI smoke test of the HTTP serving surface, end to end as a real process.

Boots ``python -m repro.serve`` on an ephemeral port (a genuine subprocess,
not an in-process server — this is the deployment artefact CI is vouching
for) and diffs the served JSON against the in-process API across three
request shapes:

* ``POST /v1/spec`` with a Fig. 8 request vs a direct
  :func:`repro.experiments.run_fig8` call;
* ``POST /v1/spec`` with a ``p1db`` compression request vs a direct
  :func:`repro.experiments.run_p1db` call (the waveform engine behind it
  must serve bit-identically);
* ``POST /v1/batch`` with a three-design population vs per-design
  :func:`repro.experiments.run_table1` calls (the batch fan-out through the
  sweep engine must not change a single double);
* ``POST /v1/batch`` with ``fig10`` and ``iip2`` requests over the same
  population vs per-design :func:`run_fig10` / :func:`run_iip2` calls —
  the waveform benches fan out through the batched waveform engine and
  must not change a single double either;
* ``POST /v1/spec`` with a ``digital_if`` request vs a direct
  :func:`repro.experiments.run_digital_if` call — the fixed-point digital
  back end (quantized NCO/CIC down-conversion) must serve bit-identically;
* ``POST /v1/spec`` with a small ``yield_opt`` search vs a direct
  :func:`repro.optimize.run_yield_opt` call — the corner-aware optimiser
  must be servable bit-identically like every other experiment;
* ``POST /v1/spec`` with a small ``yield_pareto`` search vs a direct
  :func:`repro.optimize.run_pareto_opt` call — the multi-objective front
  (fingerprints, objective vectors, order) must serve bit-identically;
* ``POST /v1/jobs`` submit -> ``GET /v1/jobs/<id>`` poll -> result with a
  second ``yield_opt`` search — the async surface must report progress
  while running and finish with the same bit-identical payload;
* a concurrent burst of single-design ``fig8`` requests (plus identical
  duplicates) through the coalescing scheduler — the server boots with
  ``--coalesce-window-ms`` on, the merged responses must match solo
  in-process submits, and ``GET /v1/metrics`` must report the coalescing
  counters (coalesced batches, batch-size histogram, singleflight hits);
* ``GET /v1/metrics`` — the latency/counter snapshot must account for the
  traffic this script just generated.

The whole run executes with continuous micro-batching enabled, so every
bit-identity check above also vouches that the coalescing scheduler never
changes a served byte.

Any difference — a float, an axis label, a schema field — is a failure.

Run by the CI ``serve-smoke`` job and by hand::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
POINTS = 48  # enough structure to catch real drift, fast enough for CI
STARTUP_TIMEOUT_S = 60.0
#: Small but genuine yield search: 3 candidates x 2 iterations x 4 corners.
#: The active-mode-only targets are derived from the canonical default set
#: in check_yield_opt (imports only resolve after main() sets the path).
YIELD_GRID: dict = {
    "population": 3,
    "iterations": 2,
    "num_samples": 4,
}


#: The smoke server runs with micro-batching ON: a short window keeps the
#: added per-request latency negligible while the burst check below (and
#: every bit-identity check in the file) exercises the coalescing path.
COALESCE_WINDOW_MS = 150.0


def start_server(env: dict) -> tuple[subprocess.Popen, str]:
    """Boot ``python -m repro.serve --port 0`` and parse its bound address."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--coalesce-window-ms", str(COALESCE_WINDOW_MS),
         "--max-coalesce", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=REPO_ROOT, env=env)
    assert process.stdout is not None
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    raise RuntimeError("server never announced its address")


def wait_healthy(base_url: str) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base_url + "/v1/health",
                                        timeout=5) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise RuntimeError("server never became healthy")


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read().decode("utf-8"))


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def check_fig8_spec(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.experiments import run_fig8

    request = SpecRequest(experiment="fig8", grid={"points": POINTS})
    served = post_json(base_url + "/v1/spec", request.to_dict())
    expected = encode(run_fig8(points=POINTS))
    if served["result"] != expected:
        print("FAIL: served Fig. 8 payload differs from run_fig8()",
              file=sys.stderr)
        return 1
    if served["result_schema"] != "Fig8Result":
        print(f"FAIL: unexpected result_schema "
              f"{served['result_schema']!r}", file=sys.stderr)
        return 1
    print(f"serve smoke OK: Fig. 8 over HTTP ({POINTS} points) is "
          f"bit-identical to run_fig8() [source={served['source']}]")
    return 0


#: Coarse but compression-reaching power grid for the served p1db check.
P1DB_POWERS = [-40.0, -34.0, -28.0, -22.0, -16.0, -10.0]

#: Small-signal power grid shared by the batched fig10/iip2 checks.
WAVEFORM_POWERS = [-45.0, -43.0, -41.0, -39.0, -37.0]


def check_p1db_spec(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.experiments import run_p1db

    request = SpecRequest(experiment="p1db",
                          grid={"input_powers_dbm": P1DB_POWERS})
    served = post_json(base_url + "/v1/spec", request.to_dict())
    expected = run_p1db(input_powers_dbm=P1DB_POWERS)
    if served["result"] != encode(expected):
        print("FAIL: served p1db payload differs from run_p1db()",
              file=sys.stderr)
        return 1
    if served["result_schema"] != "P1dbResult":
        print(f"FAIL: unexpected result_schema "
              f"{served['result_schema']!r}", file=sys.stderr)
        return 1
    print("serve smoke OK: p1db compression sweep over HTTP is "
          "bit-identical to run_p1db() "
          f"[measured {expected.passive.measured_p1db_dbm:.2f} dBm passive]")
    return 0


#: ADC resolutions exercised by the served digital-IF check.
DIGITAL_BITS = [6, 10, 14]


def check_digital_if(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.experiments import run_digital_if

    request = SpecRequest(experiment="digital_if",
                          grid={"adc_bits": DIGITAL_BITS})
    served = post_json(base_url + "/v1/spec", request.to_dict())
    expected = run_digital_if(adc_bits=DIGITAL_BITS)
    if served["result"] != encode(expected):
        print("FAIL: served digital_if payload differs from "
              "run_digital_if()", file=sys.stderr)
        return 1
    if served["result_schema"] != "DigitalIfResult":
        print(f"FAIL: unexpected result_schema "
              f"{served['result_schema']!r}", file=sys.stderr)
        return 1
    print("serve smoke OK: digital-IF quantization sweep over HTTP is "
          "bit-identical to run_digital_if() "
          f"[peak SNR {expected.active.peak_snr_db:.1f} dB active]")
    return 0


def check_waveform_batch(base_url: str) -> int:
    """Batched fig10/iip2 populations vs per-design waveform runs."""
    from repro.api import SpecRequest, encode
    from repro.core.config import MixerDesign
    from repro.experiments import run_fig10, run_iip2
    from repro.sweep.montecarlo import DeviceSpread, sample_design
    import numpy as np

    rng = np.random.default_rng(7)
    nominal = MixerDesign()
    population = [nominal] + [
        sample_design(nominal, rng, DeviceSpread(), f"wave-{index}")
        for index in range(2)
    ]
    grid = {"input_powers_dbm": WAVEFORM_POWERS}
    requests = [SpecRequest(experiment=name, design=design,
                            grid=grid).to_dict()
                for name in ("fig10", "iip2") for design in population]
    served = post_json(base_url + "/v1/batch", {"requests": requests})
    responses = served.get("responses", [])
    if len(responses) != len(requests):
        print(f"FAIL: waveform batch returned {len(responses)} responses "
              f"for {len(requests)} requests", file=sys.stderr)
        return 1
    expected = [encode(run_fig10(design, input_powers_dbm=WAVEFORM_POWERS))
                for design in population]
    expected += [encode(run_iip2(design, input_powers_dbm=WAVEFORM_POWERS))
                 for design in population]
    for index, (response, reference) in enumerate(zip(responses, expected)):
        if response["result"] != reference:
            name = "fig10" if index < len(population) else "iip2"
            print(f"FAIL: batched {name} payload differs from the direct "
                  f"run for design #{index % len(population)}",
                  file=sys.stderr)
            return 1
    print(f"serve smoke OK: /v1/batch fig10+iip2 over a {len(population)}-"
          "design population is bit-identical to per-design runs")
    return 0


def check_batch_population(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.core.config import MixerDesign
    from repro.experiments import run_table1
    from repro.sweep.montecarlo import DeviceSpread, sample_design
    import numpy as np

    rng = np.random.default_rng(42)
    nominal = MixerDesign()
    population = [nominal] + [
        sample_design(nominal, rng, DeviceSpread(), f"smoke-{index}")
        for index in range(2)
    ]
    requests = [SpecRequest(experiment="table1", design=design).to_dict()
                for design in population]
    served = post_json(base_url + "/v1/batch", {"requests": requests})
    responses = served.get("responses", [])
    if len(responses) != len(population):
        print(f"FAIL: batch returned {len(responses)} responses for "
              f"{len(population)} requests", file=sys.stderr)
        return 1
    for design, response in zip(population, responses):
        if response["result"] != encode(run_table1(design)):
            print("FAIL: batch Table I payload differs from run_table1() "
                  f"for design {design.fingerprint()[:12]}", file=sys.stderr)
            return 1
    print(f"serve smoke OK: /v1/batch over a {len(population)}-design "
          "population is bit-identical to per-design run_table1()")
    return 0


def check_yield_opt(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.core.config import MixerMode
    from repro.optimize import default_targets, run_yield_opt

    grid = dict(YIELD_GRID)
    grid["targets"] = [target.to_wire() for target in default_targets()
                       if target.mode is MixerMode.ACTIVE]
    request = SpecRequest(experiment="yield_opt", grid=grid)
    served = post_json(base_url + "/v1/spec", request.to_dict())
    expected = run_yield_opt(**grid)
    if served["result"] != encode(expected):
        print("FAIL: served yield_opt payload differs from run_yield_opt()",
              file=sys.stderr)
        return 1
    if served["result_schema"] != "YieldOptResult":
        print(f"FAIL: unexpected result_schema "
              f"{served['result_schema']!r}", file=sys.stderr)
        return 1
    best = served["result"]["fields"]["best_design"]
    if best.get("__dataclass__") != "MixerDesign":
        print("FAIL: served best_design is not a MixerDesign payload",
              file=sys.stderr)
        return 1
    print("serve smoke OK: yield_opt search over HTTP is bit-identical to "
          f"run_yield_opt() [best yield {expected.best_yield:.0%}, "
          f"fingerprint {expected.best_fingerprint()[:12]}]")
    return 0


def check_yield_pareto(base_url: str) -> int:
    from repro.api import SpecRequest, encode
    from repro.core.config import MixerMode
    from repro.optimize import default_targets, run_pareto_opt

    grid = dict(YIELD_GRID)
    grid["targets"] = [target.to_wire() for target in default_targets()
                       if target.mode is MixerMode.ACTIVE]
    request = SpecRequest(experiment="yield_pareto", grid=grid)
    served = post_json(base_url + "/v1/spec", request.to_dict())
    expected = run_pareto_opt(**grid)
    if served["result"] != encode(expected):
        print("FAIL: served yield_pareto payload differs from "
              "run_pareto_opt()", file=sys.stderr)
        return 1
    if served["result_schema"] != "ParetoOptResult":
        print(f"FAIL: unexpected result_schema "
              f"{served['result_schema']!r}", file=sys.stderr)
        return 1
    print("serve smoke OK: yield_pareto search over HTTP is bit-identical "
          f"to run_pareto_opt() [front size {expected.front.size}, "
          f"{len(expected.objectives)} objectives]")
    return 0


def check_jobs_async(base_url: str) -> int:
    """Submit -> poll -> result through the async job surface."""
    from repro.api import SpecRequest, encode
    from repro.core.config import MixerMode
    from repro.optimize import default_targets, run_yield_opt

    # A different seed than check_yield_opt's request, so the job cannot be
    # answered from the response cache: it must really run, and the poll
    # loop gets to observe it doing so.
    grid = dict(YIELD_GRID, seed=7)
    grid["targets"] = [target.to_wire() for target in default_targets()
                       if target.mode is MixerMode.ACTIVE]
    request = SpecRequest(experiment="yield_opt", grid=grid)
    job = post_json(base_url + "/v1/jobs",
                    {"request": request.to_dict()})["job"]
    if job.get("state") not in ("queued", "running"):
        print(f"FAIL: submitted job in unexpected state {job.get('state')!r}",
              file=sys.stderr)
        return 1
    progress_frames = 0
    last_progress = ""
    deadline = time.monotonic() + 300
    while True:
        if time.monotonic() > deadline:
            print(f"FAIL: job {job['id']} never finished", file=sys.stderr)
            return 1
        job = get_json(f"{base_url}/v1/jobs/{job['id']}")["job"]
        progress = json.dumps(job.get("progress") or {}, sort_keys=True)
        if job.get("progress") and progress != last_progress:
            progress_frames += 1
            last_progress = progress
        if job["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    if job["state"] != "done":
        print(f"FAIL: job ended {job['state']}: {job.get('error')}",
              file=sys.stderr)
        return 1
    if job["result"]["result"] != encode(run_yield_opt(**grid)):
        print("FAIL: async job yield_opt payload differs from "
              "run_yield_opt()", file=sys.stderr)
        return 1
    final = job.get("progress", {})
    if final.get("iteration") != grid["iterations"] \
            or len(final.get("history", [])) != grid["iterations"]:
        print(f"FAIL: job progress never reached the final iteration "
              f"(last frame: {final})", file=sys.stderr)
        return 1
    print(f"serve smoke OK: /v1/jobs submit->poll->result is bit-identical "
          f"to run_yield_opt() [{progress_frames} progress frame(s), "
          f"ran {job['running_s']:.2f}s]")
    return 0


def check_coalescing(base_url: str) -> int:
    """A coalesced burst must match solo submits, and metrics must show it."""
    from concurrent.futures import ThreadPoolExecutor
    from repro.api import MixerService, SpecRequest
    from repro.core.config import MixerDesign

    designs = [MixerDesign().with_gain_setting(1.0 + 0.003 * index)
               for index in range(8)]
    requests = [SpecRequest(experiment="fig8", design=design,
                            grid={"points": POINTS})
                for design in designs]
    # Three exact duplicates of the last request ride along: singleflight
    # should answer them from the leader's one execution (or, if they land
    # after it finished, from the response cache — either way no recompute
    # changes a byte).
    requests += [requests[-1]] * 3
    with ThreadPoolExecutor(max_workers=len(requests)) as pool:
        served = list(pool.map(
            lambda request: post_json(base_url + "/v1/spec",
                                      request.to_dict()),
            requests))
    solo = MixerService(response_cache=False)
    for index, (request, response) in enumerate(zip(requests, served)):
        expected = solo.submit(request).to_dict()
        for payload in (response, expected):
            # Wall-clock timing and cache provenance are the only fields
            # allowed to differ between a merged and a solo answer.
            payload.pop("elapsed_s", None)
            payload.pop("source", None)
        if response != expected:
            print(f"FAIL: coalesced burst response #{index} differs from "
                  f"a solo MixerService.submit()", file=sys.stderr)
            return 1
    jobs = get_json(base_url + "/v1/metrics").get("jobs", {})
    coalesce = jobs.get("coalesce") or {}
    problems = []
    for key in ("enabled", "coalesced_batches", "coalesced_jobs",
                "batch_size_le", "singleflight_hits"):
        if key not in coalesce:
            problems.append(f"metrics missing jobs.coalesce.{key}")
    if "queue_wait_le_s" not in jobs:
        problems.append("metrics missing jobs.queue_wait_le_s")
    if not problems:
        if not coalesce["enabled"]:
            problems.append("coalescing reported disabled despite the flag")
        if coalesce["coalesced_batches"] < 1:
            problems.append("burst produced no coalesced batch")
        if coalesce["singleflight_hits"] < 1:
            problems.append("identical duplicates produced no "
                            "singleflight hit")
    if problems:
        for problem in problems:
            print(f"FAIL: coalescing: {problem}", file=sys.stderr)
        return 1
    print(f"serve smoke OK: coalesced {len(requests)}-request fig8 burst is "
          f"bit-identical to solo submits "
          f"[{coalesce['coalesced_batches']} merged batch(es), "
          f"{coalesce['coalesced_jobs']} jobs merged, "
          f"{coalesce['singleflight_hits']} singleflight hit(s)]")
    return 0


def check_metrics(base_url: str) -> int:
    """The metrics snapshot must account for the traffic generated above."""
    snapshot = get_json(base_url + "/v1/metrics")
    problems = []
    spec = snapshot.get("requests", {}).get("/v1/spec", {})
    if spec.get("count", 0) < 1:
        problems.append("no /v1/spec observations")
    if spec.get("latency_le_s", {}).get("+Inf") != spec.get("count"):
        problems.append("latency histogram +Inf bucket != request count")
    if snapshot.get("experiments", {}).get("yield_opt", 0) < 2:
        problems.append("yield_opt experiment counter below 2")
    jobs = snapshot.get("jobs", {})
    if jobs.get("completed", 0) < 1 or jobs.get("failed", 0) != 0:
        problems.append(f"unexpected job counters: {jobs}")
    cache = snapshot.get("response_cache") or {}
    if cache.get("stores", 0) < 1:
        problems.append("response cache recorded no stores")
    if snapshot.get("load_shed_total", 0) != 0:
        problems.append("server shed load during the smoke run")
    if problems:
        for problem in problems:
            print(f"FAIL: /v1/metrics: {problem}", file=sys.stderr)
        return 1
    print(f"serve smoke OK: /v1/metrics accounts for the run "
          f"[{spec['count']} /v1/spec request(s), "
          f"{jobs['completed']} job(s) completed, "
          f"cache hit rate {cache['hit_rate']:.0%}]")
    return 0


def main() -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    sys.path.insert(0, src)

    process, base_url = start_server(env)
    try:
        wait_healthy(base_url)
        status = check_fig8_spec(base_url)
        status = status or check_p1db_spec(base_url)
        status = status or check_batch_population(base_url)
        status = status or check_waveform_batch(base_url)
        status = status or check_digital_if(base_url)
        status = status or check_yield_opt(base_url)
        status = status or check_yield_pareto(base_url)
        status = status or check_jobs_async(base_url)
        status = status or check_coalescing(base_url)
        status = status or check_metrics(base_url)
        return status
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
