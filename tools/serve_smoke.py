#!/usr/bin/env python3
"""CI smoke test of the HTTP serving surface, end to end as a real process.

Boots ``python -m repro.serve`` on an ephemeral port (a genuine subprocess,
not an in-process server — this is the deployment artefact CI is vouching
for), POSTs a Fig. 8 request, and diffs the served JSON against a direct
:func:`repro.experiments.run_fig8` call.  Any difference — a float, an axis
label, a schema field — is a failure: the HTTP surface must be bit-identical
to the in-process API.

Run by the CI ``serve-smoke`` job and by hand::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
POINTS = 48  # enough structure to catch real drift, fast enough for CI
STARTUP_TIMEOUT_S = 60.0


def start_server(env: dict) -> tuple[subprocess.Popen, str]:
    """Boot ``python -m repro.serve --port 0`` and parse its bound address."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=REPO_ROOT, env=env)
    assert process.stdout is not None
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    raise RuntimeError("server never announced its address")


def wait_healthy(base_url: str) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base_url + "/v1/health",
                                        timeout=5) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise RuntimeError("server never became healthy")


def main() -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    sys.path.insert(0, src)
    from repro.api import SpecRequest, encode
    from repro.experiments import run_fig8

    process, base_url = start_server(env)
    try:
        wait_healthy(base_url)
        request = SpecRequest(experiment="fig8", grid={"points": POINTS})
        body = json.dumps(request.to_dict()).encode("utf-8")
        http_request = urllib.request.Request(
            base_url + "/v1/spec", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(http_request, timeout=120) as response:
            served = json.loads(response.read().decode("utf-8"))

        expected = encode(run_fig8(points=POINTS))
        if served["result"] != expected:
            print("FAIL: served Fig. 8 payload differs from run_fig8()",
                  file=sys.stderr)
            return 1
        if served["result_schema"] != "Fig8Result":
            print(f"FAIL: unexpected result_schema "
                  f"{served['result_schema']!r}", file=sys.stderr)
            return 1
        print(f"serve smoke OK: Fig. 8 over HTTP ({POINTS} points) is "
              f"bit-identical to run_fig8() [source={served['source']}]")
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
