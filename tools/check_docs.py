#!/usr/bin/env python3
"""Docs lint: the README and architecture guide must not rot.

Dependency-free checker run by CI (and by hand) over the repo's Markdown
documentation. It enforces the acceptance bar "every command shown in the
docs runs as written" at smoke level:

* every relative Markdown link (``[text](path)``) must point at a file or
  directory that exists;
* every fenced ``python`` block must execute successfully with ``src`` on
  ``PYTHONPATH`` (blocks are run in a subprocess, from the repo root);
* every fenced ``bash`` block is tokenised and any token that looks like a
  repo path (``tests``, ``benchmarks``, ``examples/quickstart.py``, ...)
  must exist — the full pytest invocations themselves are exercised by the
  dedicated CI steps, so they are not re-run here;
* backtick-quoted inline references to tracked test/bench/source files
  (e.g. ```tests/test_golden_figures.py```) must exist.

Exit status is non-zero on the first category of failure, with every
finding listed.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = ["README.md", "docs/architecture.md", "docs/api.md",
        "docs/waveforms.md", "docs/digital.md", "docs/optimization.md",
        "docs/benchmarks.md"]

#: Markdown links: [text](target) — external schemes and anchors are skipped.
_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)[^)]*\)")
#: Fenced code blocks with a language tag.
_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)
#: Inline code spans that look like repo-relative file paths.
_INLINE_PATH = re.compile(r"`((?:src|tests|benchmarks|examples|docs|tools)"
                          r"/[\w./-]+)`")
#: Bash tokens that look like repo-relative paths (conservative).
_BASH_PATH = re.compile(r"^(?:src|tests|benchmarks|examples|docs|tools)"
                        r"(?:/[\w.-]+)*$")


def _check_links(doc: Path, text: str, problems: list[str]) -> None:
    for match in _LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{doc}: broken link -> {target}")


def _check_inline_paths(doc: Path, text: str, problems: list[str]) -> None:
    for match in _INLINE_PATH.finditer(text):
        target = REPO_ROOT / match.group(1)
        if not target.exists():
            problems.append(f"{doc}: inline reference to missing file "
                            f"{match.group(1)}")


def _check_bash_block(doc: Path, body: str, problems: list[str]) -> None:
    for line in body.strip().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        for token in line.split():
            if _BASH_PATH.match(token) and not (REPO_ROOT / token).exists():
                problems.append(f"{doc}: bash snippet references missing "
                                f"path {token!r} in: {line}")


def _run_python_block(doc: Path, index: int, body: str,
                      problems: list[str]) -> None:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    # Docs examples must not need — or pollute — a user-level cache dir.
    env.setdefault("REPRO_SWEEP_CACHE_DIR",
                   str(REPO_ROOT / ".docs-check-cache"))
    try:
        result = subprocess.run([sys.executable, "-"], input=body, text=True,
                                capture_output=True, cwd=REPO_ROOT, env=env,
                                timeout=600)
    except subprocess.TimeoutExpired:
        problems.append(f"{doc}: python block #{index} timed out after 600 s")
        return
    if result.returncode != 0:
        tail = result.stderr.strip().splitlines()[-1:] or ["(no stderr)"]
        problems.append(f"{doc}: python block #{index} failed: {tail[0]}")


def main() -> int:
    problems: list[str] = []
    for name in DOCS:
        doc = REPO_ROOT / name
        if not doc.exists():
            problems.append(f"missing documentation file: {name}")
            continue
        text = doc.read_text(encoding="utf-8")
        _check_links(doc, text, problems)
        _check_inline_paths(doc, text, problems)
        python_blocks = 0
        for language, body in _FENCE.findall(text):
            if language == "bash":
                _check_bash_block(doc, body, problems)
            elif language == "python":
                python_blocks += 1
                _run_python_block(doc, python_blocks, body, problems)
        print(f"checked {name}: {python_blocks} python block(s) executed")
    if problems:
        print(f"\n{len(problems)} documentation problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
