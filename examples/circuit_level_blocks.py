#!/usr/bin/env python3
"""Circuit-level exploration of the mixer's building blocks.

The figure-level experiments use the behavioural mixer model, but the
library also ships a small MNA circuit engine and 65 nm-class device models.
This example uses them the way a designer would while sizing the blocks:

* bias the transconductance devices and inspect gm / gm-over-Id;
* size the PMOS degeneration switch and the transmission-gate load and look
  at their resistance across the signal range (the 1.2 V headroom argument);
* sweep the closed-loop TIA input impedance (equation 4) with the circuit
  engine and compare with the analytic expression;
* solve a resistive-divider + MOSFET bias circuit with the DC solver.

Run with::

    python examples/circuit_level_blocks.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import (
    Circuit,
    MosfetElement,
    ResistorElement,
    VoltageSource,
    dc_operating_point,
)
from repro.core.config import MixerDesign
from repro.core.switches import PmosSwitch, TransmissionGate
from repro.core.transconductance import TransconductanceAmplifier
from repro.devices.mosfet import Mosfet
from repro.experiments.tia_response import format_report, run_tia_response


def bias_the_transconductor(design: MixerDesign) -> None:
    """Size and bias the Gm devices from the design targets."""
    tca = TransconductanceAmplifier(design)
    point = tca.bias_point
    print("Transconductance amplifier bias")
    print(f"  device: W = {tca.device.params.width * 1e6:.1f} um, "
          f"L = {tca.device.params.length * 1e9:.0f} nm")
    print(f"  Vgs = {point.vgs:.3f} V, Vov = {point.vov:.3f} V, "
          f"Id = {point.id * 1e3:.2f} mA")
    print(f"  gm = {point.gm * 1e3:.2f} mS (target {design.tca_gm * 1e3:.1f} mS), "
          f"gm/Id = {point.gm_over_id:.1f} 1/V, ro = {point.ro / 1e3:.1f} kohm")
    print(f"  stand-alone IIP3 of the stage: {tca.iip3_dbm():.1f} dBm")


def switch_headroom(design: MixerDesign) -> None:
    """Show why the transmission gate is used as the 1.2 V load."""
    print("\nSwitch sizing and headroom at 1.2 V")
    pmos = PmosSwitch.sized_for_degeneration(design.degeneration_resistance,
                                             technology=design.technology)
    print(f"  PMOS degeneration switch: W = {pmos.width * 1e6:.1f} um -> "
          f"R_on = {pmos.on_resistance():.1f} ohm at mid-rail")

    tg = TransmissionGate.sized_for_load(design.load_resistance,
                                         technology=design.technology)
    print(f"  transmission-gate load: R(mid-rail) = {tg.on_resistance():.0f} ohm, "
          f"flatness max/min = {tg.resistance_flatness():.2f}")
    voltages = np.linspace(0.15, 1.05, 7)
    profile = ", ".join(f"{v:.2f}V:{tg.on_resistance(float(v)):.0f}"
                        for v in voltages)
    print(f"  R_TG across the signal range (ohm): {profile}")


def dc_solver_demo(design: MixerDesign) -> None:
    """Solve a diode-connected bias branch with the MNA DC solver."""
    print("\nDC operating point of a diode-connected bias branch")
    technology = design.technology
    circuit = Circuit("bias-branch")
    circuit.add(VoltageSource("vdd", "vdd", "0", dc=technology.vdd))
    circuit.add(ResistorElement("rbias", "vdd", "gate", 2.0e3))
    device = Mosfet.nmos(30e-6, 100e-9, technology)
    circuit.add(MosfetElement("m1", "gate", "gate", "0", device))
    solution = dc_operating_point(circuit)
    vgs = solution.voltage("gate")
    op = device.operating_point(vgs, vgs)
    print(f"  converged in {solution.iterations} iterations: "
          f"V(gate) = {vgs:.3f} V, Id = {op.id * 1e3:.2f} mA, "
          f"region = {op.region.value}")
    print(f"  supply delivers {solution.supply_power() * 1e3:.2f} mW")


def main() -> None:
    design = MixerDesign()
    bias_the_transconductor(design)
    switch_headroom(design)
    dc_solver_demo(design)
    print()
    print(format_report(run_tia_response(design)))


if __name__ == "__main__":
    main()
