#!/usr/bin/env python3
"""Serve a Monte-Carlo design population through the unified spec service.

Run with::

    python examples/serve_demo.py

This demonstrates the workload the API layer exists for — design-space
exploration over many candidate designs as typed requests:

1. sample a small Monte-Carlo population of perturbed designs (the same
   device spread the sweep engine's yield scenario uses);
2. wrap each design in a :class:`repro.api.SpecRequest` against Table I
   and submit the whole population with one
   :meth:`repro.api.MixerService.submit_batch` call — the service fans the
   group out through the sweep engine as one design axis;
3. re-submit the identical batch to show every response now comes from the
   request-level cache (zero sizing bisections, same payloads);
4. read the per-design gain spread off the typed responses.

The same requests serialize with ``request.to_dict()`` and can be POSTed
unchanged to ``python -m repro.serve`` (see docs/api.md for the curl
spelling).
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import MixerService, SpecRequest
from repro.core.config import MixerDesign, MixerMode
from repro.core.transconductance import sizing_solve_count
from repro.sweep.montecarlo import DeviceSpread, sample_design

POPULATION = 8
SEED = 20150901


def sample_population(count: int) -> list[MixerDesign]:
    """A small Monte-Carlo spread around the paper's design point."""
    rng = np.random.default_rng(SEED)
    nominal = MixerDesign()
    spread = DeviceSpread()
    return [sample_design(nominal, rng, spread, f"demo-{index:02d}")
            for index in range(count)]


def main() -> None:
    service = MixerService()
    designs = sample_population(POPULATION)
    requests = [SpecRequest(experiment="table1", design=design)
                for design in designs]

    print(f"submitting {len(requests)} table1 requests as one batch...")
    started = time.perf_counter()
    responses = service.submit_batch(requests)
    batch_s = time.perf_counter() - started
    print(f"  computed in {batch_s:.2f} s "
          f"(sources: {sorted({r.source for r in responses})})")

    solves_before = sizing_solve_count()
    started = time.perf_counter()
    cached = service.submit_batch(requests)
    cached_s = time.perf_counter() - started
    print(f"  re-submitted in {cached_s:.3f} s, "
          f"sizing bisections performed: "
          f"{sizing_solve_count() - solves_before} "
          f"(sources: {sorted({r.source for r in cached})})")
    assert all(r.cached for r in cached)
    assert [r.result_payload for r in cached] == \
        [r.result_payload for r in responses]

    print("\nper-design active-mode gain (Table I, 'this work' column):")
    gains = []
    for design, response in zip(designs, responses):
        table = response.result
        gain_db = table.this_work_active.conversion_gain_db
        gains.append(gain_db)
        print(f"  {response.design_fingerprint[:12]}  {gain_db:6.2f} dB")
    print(f"population spread: mean {np.mean(gains):.2f} dB, "
          f"sigma {np.std(gains):.3f} dB "
          f"(paper nominal: {MixerMode.ACTIVE.value} 29.2 dB)")


if __name__ == "__main__":
    main()
