#!/usr/bin/env python3
"""Multi-standard IoT receiver planning with the reconfigurable front end.

The paper motivates the mixer with IoT terminals that must hop between
ZigBee, Bluetooth LE, Wi-Fi and higher-band standards with one radio.  Each
standard stresses the front end differently: narrowband sensor links care
about sensitivity (noise figure), while standards that must tolerate strong
adjacent interferers care about linearity (IIP3).

This example sizes the full Fig. 2 front end (balun + LNA + reconfigurable
mixer) for a set of representative standards, decides per standard which
mixer mode to use, and compares against a gain-only reconfigurable baseline
(the refs [10]-[12] family) to show why gain-only reconfiguration is not
enough.

Run with::

    python examples/multi_standard_receiver.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import MixerMode, WidebandReceiverFrontEnd
from repro.baselines.variable_gain import VariableGainMixer


@dataclass(frozen=True)
class Standard:
    """A wireless standard's front-end requirements (illustrative values)."""

    name: str
    rf_frequency_hz: float
    channel_bandwidth_hz: float
    required_snr_db: float
    required_sensitivity_dbm: float
    required_iip3_dbm: float


STANDARDS = [
    Standard("ZigBee (2.4 GHz)", 2.45e9, 2e6, 6.0, -92.0, -18.0),
    Standard("Bluetooth LE", 2.44e9, 1e6, 8.0, -90.0, -16.0),
    Standard("Wi-Fi 802.11g", 2.437e9, 20e6, 20.0, -72.0, -10.0),
    Standard("Wi-Fi 802.11n (5 GHz)", 5.2e9, 40e6, 22.0, -68.0, -8.0),
    Standard("Cognitive radio (TVWS)", 0.7e9, 6e6, 12.0, -85.0, -5.0),
]


def choose_mode(front_end: WidebandReceiverFrontEnd,
                standard: Standard) -> tuple[MixerMode, dict[str, float]]:
    """Pick the mixer mode that satisfies the standard with most margin.

    Preference order: both requirements met -> larger combined margin; if
    only one mode meets both requirements it wins outright.
    """
    scores: dict[MixerMode, dict[str, float]] = {}
    for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
        front_end.set_mode(mode)
        cascade = front_end.cascade(standard.rf_frequency_hz)
        sensitivity = front_end.sensitivity_dbm(standard.channel_bandwidth_hz,
                                                standard.required_snr_db,
                                                standard.rf_frequency_hz)
        scores[mode] = {
            "sensitivity_dbm": sensitivity,
            "sensitivity_margin_db": standard.required_sensitivity_dbm
            - sensitivity,
            "iip3_dbm": cascade.iip3_dbm,
            "iip3_margin_db": cascade.iip3_dbm - standard.required_iip3_dbm,
            "gain_db": cascade.gain_db,
            "nf_db": cascade.nf_db,
        }

    def meets(mode: MixerMode) -> bool:
        s = scores[mode]
        return s["sensitivity_margin_db"] >= 0 and s["iip3_margin_db"] >= 0

    def combined_margin(mode: MixerMode) -> float:
        s = scores[mode]
        return min(s["sensitivity_margin_db"], s["iip3_margin_db"])

    candidates = [m for m in (MixerMode.ACTIVE, MixerMode.PASSIVE) if meets(m)]
    if candidates:
        best = max(candidates, key=combined_margin)
    else:
        best = max((MixerMode.ACTIVE, MixerMode.PASSIVE), key=combined_margin)
    return best, scores[best]


def main() -> None:
    front_end = WidebandReceiverFrontEnd()
    print("Multi-standard receiver planning with the reconfigurable mixer")
    print(f"{'standard':<26} {'mode':<8} {'sens (dBm)':>11} {'req':>7} "
          f"{'IIP3 (dBm)':>11} {'req':>7}")
    for standard in STANDARDS:
        mode, score = choose_mode(front_end, standard)
        print(f"{standard.name:<26} {mode.value:<8} "
              f"{score['sensitivity_dbm']:>11.1f} "
              f"{standard.required_sensitivity_dbm:>7.1f} "
              f"{score['iip3_dbm']:>11.1f} {standard.required_iip3_dbm:>7.1f}")

    # Why gain-only reconfiguration (refs [10]-[12]) is not enough: even at
    # its lowest-gain (most linear) setting, the variable-gain mixer cannot
    # reach the linearity the interferer-heavy standards need without also
    # giving up its noise figure.
    print("\nGain-only baseline (variable-gain mixer family, refs [10]-[12]):")
    baseline = VariableGainMixer()
    for standard in STANDARDS:
        shortfall = baseline.linearity_shortfall_vs(standard.required_iip3_dbm)
        nf_at_best_iip3 = baseline.nf_at(baseline.min_gain_db)
        status = "ok" if shortfall == 0.0 else f"short by {shortfall:.1f} dB"
        print(f"  {standard.name:<26} best IIP3 "
              f"{baseline.best_iip3_dbm():6.1f} dBm ({status}), "
              f"NF at that setting {nf_at_best_iip3:.1f} dB")

    print("\nThe reconfigurable mixer covers the linearity-hungry standards "
          "in passive mode and the sensitivity-hungry ones in active mode, "
          "with a single circuit and a logic signal.")


if __name__ == "__main__":
    main()
