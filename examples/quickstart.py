#!/usr/bin/env python3
"""Quickstart: build the reconfigurable mixer and read its headline specs.

Run with::

    python examples/quickstart.py

This walks the public API end to end:

1. create the default design point (the paper's 65 nm / 1.2 V operating
   point);
2. instantiate the reconfigurable mixer in each mode;
3. print the Table I quantities next to the numbers the paper reports;
4. perform one real waveform-level measurement (conversion gain of a
   -40 dBm tone at 2.405 GHz) to show the measurement bench in action.
"""

from __future__ import annotations

from repro import MixerDesign, MixerMode, ReconfigurableMixer
from repro.core.config import paper_targets
from repro.rf.conversion_gain import measure_conversion_gain


def describe_mode(mixer: ReconfigurableMixer) -> None:
    """Print the analytic specs of one mode next to the paper's numbers."""
    specs = mixer.specs()
    targets = paper_targets(mixer.mode)
    print(f"\n=== {mixer.mode.value.upper()} mode "
          f"(Vlogic = {mixer.vlogic}) ===")
    rows = [
        ("conversion gain (dB)", specs.conversion_gain_db,
         targets.conversion_gain_db),
        ("noise figure @5 MHz (dB)", specs.noise_figure_db,
         targets.noise_figure_db),
        ("IIP3 (dBm)", specs.iip3_dbm, targets.iip3_dbm),
        ("1 dB compression (dBm)", specs.p1db_dbm, targets.p1db_dbm),
        ("power (mW)", specs.power_mw, targets.power_mw),
        ("band low (GHz)", specs.band_low_hz / 1e9, targets.band_low_ghz),
        ("band high (GHz)", specs.band_high_hz / 1e9, targets.band_high_ghz),
    ]
    print(f"  {'parameter':<28} {'this library':>14} {'paper':>10}")
    for label, measured, paper in rows:
        print(f"  {label:<28} {measured:>14.2f} {paper:>10.2f}")
    print(f"  flicker corner: {specs.flicker_corner_hz / 1e3:.0f} kHz"
          f"   IIP2: {specs.iip2_dbm:.1f} dBm")


def waveform_measurement(mixer: ReconfigurableMixer) -> None:
    """Measure conversion gain from an actual sampled waveform."""
    sample_rate = 10.24e9       # 10.24 GS/s -> exact 1 MHz FFT bins
    num_samples = 10240
    device = mixer.waveform_device(sample_rate, lo_frequency=2.4e9,
                                   rf_band_frequency=2.405e9)
    gain = measure_conversion_gain(device, rf_frequency=2.405e9,
                                   if_frequency=5e6, input_power_dbm=-40.0,
                                   sample_rate=sample_rate,
                                   num_samples=num_samples)
    print(f"  waveform-measured conversion gain ({mixer.mode.value}): "
          f"{gain:.2f} dB")


def main() -> None:
    design = MixerDesign()
    print("Reconfigurable active/passive mixer — quickstart")
    print(f"technology: {design.technology.name}, supply {design.vdd} V, "
          f"LO {design.lo_frequency / 1e9:.2f} GHz, "
          f"IF {design.if_frequency / 1e6:.1f} MHz")

    mixer = ReconfigurableMixer(design, MixerMode.ACTIVE)
    describe_mode(mixer)
    waveform_measurement(mixer)

    # One call flips Vlogic, powers the TIA up and re-routes the signal path.
    mixer.reconfigure()
    describe_mode(mixer)
    waveform_measurement(mixer)

    print("\nThe trade: active mode buys ~3.7 dB more gain and ~2.5 dB lower "
          "NF; passive mode buys ~18 dB better IIP3 at almost the same power.")


if __name__ == "__main__":
    main()
