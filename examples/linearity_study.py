#!/usr/bin/env python3
"""Two-tone linearity study: reproduce the Fig. 10 measurement end to end.

This example goes one level deeper than the quickstart: it drives the
waveform-level mixer model with a swept two-tone stimulus, extracts the
fundamental and IM3 lines from the output spectra, prints the intercept
construction for both modes and shows how the passive-mode linearity scales
with the degeneration resistance (the design knob the paper attributes it
to).

Run with::

    python examples/linearity_study.py
"""

from __future__ import annotations

from dataclasses import replace


from repro import MixerDesign, MixerMode, ReconfigurableMixer
from repro.experiments.fig10_iip3 import run_fig10, format_report


def intercept_construction() -> None:
    """Reproduce both panels of Fig. 10 and print the swept lines."""
    result = run_fig10()
    print(format_report(result))

    for panel, label in ((result.passive, "passive"), (result.active, "active")):
        print(f"\n  {label} mode sweep (per-tone input power -> fundamental / IM3):")
        for p_in, p_fund, p_im3 in zip(panel.input_powers_dbm[::3],
                                       panel.fundamental_dbm[::3],
                                       panel.im3_dbm[::3]):
            print(f"    {p_in:6.1f} dBm -> {p_fund:8.2f} dBm / {p_im3:8.2f} dBm")


def degeneration_sweep() -> None:
    """Show how R_deg trades passive-mode gain against linearity."""
    print("\nPassive-mode degeneration sweep (the PMOS switch sizing knob):")
    print(f"  {'R_deg (ohm)':>12} {'gain (dB)':>10} {'analytic IIP3 (dBm)':>20} "
          f"{'NF (dB)':>8}")
    base = MixerDesign()
    for r_deg in (0.0, 25.0, 50.0, 100.0, 150.0):
        design = replace(base, degeneration_resistance=r_deg)
        mixer = ReconfigurableMixer(design, MixerMode.PASSIVE)
        print(f"  {r_deg:>12.0f} {mixer.conversion_gain_db():>10.2f} "
              f"{mixer.iip3_dbm():>20.2f} {mixer.noise_figure_db():>8.2f}")
    print("  More degeneration buys IIP3 and costs gain/NF — the paper picks "
          "the switch width so R_deg lands near 50 ohm.")


def gain_setting_sweep() -> None:
    """Show the gain-tuning degree of freedom (R_F / transmission gate)."""
    print("\nGain tuning through the load / feedback resistance:")
    base = MixerDesign()
    for scale in (0.5, 1.0, 2.0):
        design = base.with_gain_setting(scale)
        active = ReconfigurableMixer(design, MixerMode.ACTIVE)
        passive = ReconfigurableMixer(design, MixerMode.PASSIVE)
        print(f"  load scale x{scale:<4}: active {active.conversion_gain_db():6.2f} dB, "
              f"passive {passive.conversion_gain_db():6.2f} dB")


def main() -> None:
    print("Two-tone linearity study (Fig. 10 reproduction)\n")
    intercept_construction()
    degeneration_sweep()
    gain_setting_sweep()


if __name__ == "__main__":
    main()
