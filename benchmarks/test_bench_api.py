"""Benchmark: the unified spec-service layer.

Gates for the API redesign:

* the service's **dispatch overhead** must be negligible — a
  :meth:`MixerService.submit` (response cache off) stays within a small
  factor of the direct ``run_*`` call it wraps;
* a **response-cache hit** must be dramatically cheaper than computing —
  >= 50x on the Fig. 8 request (it does no engine work at all; the gate is
  deliberately loose so slow CI boxes pass);
* the cached repeat performs **zero sizing bisections**, the request-level
  restatement of the spec-cache acceptance bar.

Timing gates are skipped in smoke mode (``--benchmark-disable``, the CI
configuration); the equality and zero-bisection assertions always run.
"""

from __future__ import annotations

import time

import pytest

from conftest import record_comparison

from repro.api import MixerService, SpecRequest, encode
from repro.core.transconductance import sizing_solve_count
from repro.experiments import run_fig8

POINTS = 96
MIN_CACHE_SPEEDUP = 50.0
MAX_DISPATCH_OVERHEAD = 1.5  # service submit vs direct call, same work


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def _request() -> SpecRequest:
    return SpecRequest(experiment="fig8", grid={"points": POINTS})


class TestServiceDispatch:
    def test_submit_is_bit_identical_to_direct_run(self):
        response = MixerService(response_cache=False).submit(_request())
        assert response.result_payload == encode(run_fig8(points=POINTS))

    def test_dispatch_overhead_is_negligible(self, request):
        if _smoke_mode(request):
            pytest.skip("timing gate runs in calibrated mode only")
        started = time.perf_counter()
        run_fig8(points=POINTS)
        direct_s = time.perf_counter() - started

        service = MixerService(response_cache=False)
        started = time.perf_counter()
        service.submit(_request())
        submit_s = time.perf_counter() - started

        record_comparison("api", "submit/direct overhead",
                          MAX_DISPATCH_OVERHEAD, submit_s / direct_s)
        assert submit_s <= direct_s * MAX_DISPATCH_OVERHEAD + 0.05


class TestResponseCache:
    def test_cached_repeat_speedup_and_zero_solves(self, request):
        service = MixerService()
        started = time.perf_counter()
        first = service.submit(_request())
        cold_s = time.perf_counter() - started
        assert not first.cached

        solves_before = sizing_solve_count()
        started = time.perf_counter()
        again = service.submit(_request())
        warm_s = time.perf_counter() - started

        assert sizing_solve_count() == solves_before
        assert again.cached
        assert again.result_payload == first.result_payload
        if _smoke_mode(request):
            return
        record_comparison("api", "response-cache speedup (x)",
                          MIN_CACHE_SPEEDUP, cold_s / max(warm_s, 1e-9))
        assert cold_s / max(warm_s, 1e-9) >= MIN_CACHE_SPEEDUP

    def test_benchmark_cached_submit(self, benchmark):
        """pytest-benchmark curve of the hot path (memory-cache hit)."""
        service = MixerService()
        service.submit(_request())
        response = benchmark(service.submit, _request())
        assert response.cached
