"""Benchmark: batched array sizing solver vs the scalar bisection loop.

The cold-cache population gate from the batched-solver work: sizing a
>= 64-design Monte-Carlo population through one
:func:`~repro.core.transconductance.solve_widths` call must land >= 3x
under the equivalent loop of scalar
:meth:`TransconductanceAmplifier._size_device` solves — with **bit-identical**
widths, which is the contract that lets the sweep and waveform engines
pre-size design blocks without moving a single golden pin.

The run is forced cold (``REPRO_SWEEP_CACHE=off``): the on-disk cache
exists precisely to skip these bisections, so the solver comparison must
not let a warm cache answer for either side.  The timing gate is skipped
in smoke mode (``--benchmark-disable``); the equality assertions always
run.  The calibrated ``benchmark``-fixture case feeds the nightly
``BENCH_<run>.json`` trajectory (the ``sizing`` suite in ``bench.yml``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_comparison

from repro.core.transconductance import (
    TransconductanceAmplifier,
    batched_sizing_solve_count,
    solve_widths,
)
from repro.sweep import DeviceSpread, sample_design

#: Monte-Carlo population size for the speedup gate (>= 64 per the issue).
NUM_DESIGNS = 64


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def _population(design, count: int = NUM_DESIGNS):
    rng = np.random.default_rng(20150901)
    return [sample_design(design, rng, DeviceSpread(), f"mc-{i:03d}")
            for i in range(count)]


def _scalar_widths(records) -> np.ndarray:
    return np.array([TransconductanceAmplifier(record).device.params.width
                     for record in records])


def test_bench_sizing_population_speedup(design, request,
                                         monkeypatch) -> None:
    """Cold-cache gate: one batched solve >= 3x over the scalar loop."""
    monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
    records = _population(design)

    start = time.perf_counter()
    scalar = _scalar_widths(records)
    scalar_time = time.perf_counter() - start

    batches = batched_sizing_solve_count()
    start = time.perf_counter()
    batched = solve_widths(records)
    batched_time = time.perf_counter() - start
    assert batched_sizing_solve_count() == batches + 1

    # The headline guarantee first: not one bit moves between the solvers.
    assert np.array_equal(batched, scalar)

    if _smoke_mode(request):
        return  # timing below is meaningless under smoke settings
    speedup = scalar_time / batched_time
    record_comparison(
        "sizing", f"batched/scalar solve speedup ({NUM_DESIGNS}-design MC)",
        ">= 3x", f"{speedup:.1f}x")
    assert speedup >= 3.0, (
        f"batched sizing only {speedup:.1f}x faster "
        f"({scalar_time * 1e3:.0f} ms scalar vs "
        f"{batched_time * 1e3:.0f} ms batched)")


def test_bench_sizing_batched_calibrated(design, benchmark,
                                         monkeypatch) -> None:
    """Calibrated batched-solver datapoint for the perf trajectory."""
    monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
    records = _population(design)
    widths = benchmark(solve_widths, records)
    assert widths.shape == (NUM_DESIGNS,)
    assert np.all(widths > 0)
