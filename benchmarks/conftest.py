"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper through
the drivers in :mod:`repro.experiments`, times it with pytest-benchmark and
asserts the qualitative shape the paper reports (who wins, by roughly how
much, where the corners fall).  A summary of paper-vs-measured values is
printed at the end of the run so `pytest benchmarks/ --benchmark-only` doubles
as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.core.config import MixerDesign

#: Collected (experiment, quantity, paper value, measured value) rows,
#: printed in the terminal summary.
_REPORT_ROWS: list[tuple[str, str, str, str]] = []


def record_comparison(experiment: str, quantity: str, paper, measured) -> None:
    """Register one paper-vs-measured row for the end-of-run summary."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    _REPORT_ROWS.append((experiment, quantity, fmt(paper), fmt(measured)))


@pytest.fixture(scope="session")
def design() -> MixerDesign:
    """The default design point shared by every benchmark."""
    return MixerDesign()


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    """Print the paper-vs-measured table after the benchmark run."""
    if not _REPORT_ROWS:
        return
    terminalreporter.write_sep("=", "paper vs measured (reproduction summary)")
    header = ("experiment", "quantity", "paper", "measured")
    widths = [max(len(str(row[i])) for row in [header] + _REPORT_ROWS)
              for i in range(4)]
    lines = [header] + _REPORT_ROWS
    for row in lines:
        terminalreporter.write_line(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
