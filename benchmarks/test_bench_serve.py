"""Benchmark: the hardened serving path under concurrent load.

Gates for the async job surface:

* **correctness under concurrency** — a burst of mixed-experiment clients
  hammering one server gets responses bit-identical to the in-process
  :meth:`MixerService.submit` call, every time (this assertion always
  runs, smoke mode included);
* **throughput** — sustained concurrent traffic on the hot (cached) path
  must not collapse: the concurrent burst finishes within a loose factor
  of the same requests issued serially (the persistent job-worker pool,
  not per-request machinery, carries the load);
* **load shedding** — a saturated 1-worker, 1-slot server answers the
  overflow submit with 429 instead of queueing unboundedly, and the
  metrics endpoint accounts for the shed;
* **continuous micro-batching** — a burst of 32 concurrent single-design
  ``fig8`` requests on a shared grid must run ≥3x faster through the
  coalescing scheduler than with coalescing disabled, with responses
  byte-identical between the two servers (and to a solo submit); a burst
  of identical requests must execute the engine exactly once
  (singleflight).  Identity and execution-count assertions always run;
  the speedup ratio is calibrated-mode only.

Timing gates are skipped in smoke mode (``--benchmark-disable``, the CI
configuration); the identity and shedding assertions always run.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import pytest

from conftest import record_comparison

from repro.api import MixerService, SpecRequest, register_payload_type
from repro.api.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    default_registry,
)
from repro.core.config import MixerDesign
from repro.serve import create_server, serve_in_thread

#: Mixed traffic: cheap scalar experiments plus a small curve sweep, so the
#: burst exercises different result schemas and payload sizes at once.
TRAFFIC = [
    ("power_budget", {}),
    ("table1", {}),
    ("tia_response", {"points": 16}),
    ("fig8", {"points": 24}),
]
CLIENTS = 8
REQUESTS_PER_CLIENT = 4
#: Concurrent burst vs the same requests serially; the server work is
#: GIL-bound JSON plus cache hits, so concurrency buys little — the gate
#: only refuses a collapse (listen-backlog SYN drops cost ~1s per retry,
#: lock convoys, per-request pool spin-up).  Loose factor + absolute slack
#: because the serial burst is tens of milliseconds on a quiet box.
MAX_CONCURRENT_SLOWDOWN = 3.0
SLOWDOWN_SLACK_S = 0.25


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def _post(url: str, payload: dict) -> dict:
    http_request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(http_request) as response:
        return json.loads(response.read().decode("utf-8"))


def _get(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def served():
    server = create_server(job_workers=4)
    thread = serve_in_thread(server)
    host, port = server.server_address[:2]
    yield server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _burst(base_url: str, workers: int) -> list[tuple[str, dict]]:
    """Fire the traffic mix from ``workers`` threads; (name, payload) each."""
    plan = [(name, SpecRequest(experiment=name, grid=dict(grid)).to_dict())
            for name, grid in TRAFFIC] * REQUESTS_PER_CLIENT

    def one(entry):
        name, body = entry
        return name, _post(base_url + "/v1/spec", body)

    if workers == 1:
        return [one(entry) for entry in plan]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(one, plan))


class TestConcurrentStress:
    def test_concurrent_burst_is_bit_identical(self, served):
        _server, base_url = served
        expected = {
            name: MixerService(response_cache=False).submit(
                SpecRequest(experiment=name, grid=dict(grid))).to_dict()
            for name, grid in TRAFFIC
        }
        for name, payload in _burst(base_url, workers=CLIENTS):
            assert payload["result"] == expected[name]["result"], name

    def test_concurrent_throughput_does_not_collapse(self, served, request):
        if _smoke_mode(request):
            pytest.skip("timing gate runs in calibrated mode only")
        _server, base_url = served
        _burst(base_url, workers=1)  # warm the response cache

        started = time.perf_counter()
        _burst(base_url, workers=1)
        serial_s = time.perf_counter() - started

        started = time.perf_counter()
        _burst(base_url, workers=CLIENTS)
        concurrent_s = time.perf_counter() - started

        record_comparison("serve", "concurrent/serial burst",
                          MAX_CONCURRENT_SLOWDOWN, concurrent_s / serial_s)
        assert concurrent_s <= \
            serial_s * MAX_CONCURRENT_SLOWDOWN + SLOWDOWN_SLACK_S

    def test_benchmark_concurrent_hot_burst(self, served, benchmark):
        """pytest-benchmark curve of the concurrent cached-request burst."""
        _server, base_url = served
        _burst(base_url, workers=1)  # warm the response cache
        results = benchmark(_burst, base_url, CLIENTS)
        assert len(results) == len(TRAFFIC) * REQUESTS_PER_CLIENT


@dataclass
class HoldResult:
    """Trivial payload for the gated shedding fixture below."""

    ok: bool


register_payload_type(HoldResult)

#: Gate the ``hold`` experiment blocks on — lets the shedding test pin a
#: worker deterministically instead of racing a real computation's runtime.
_HOLD = threading.Event()


def _run_hold(design, *, wait: bool = False) -> HoldResult:
    if wait:
        _HOLD.wait(timeout=30)
    return HoldResult(ok=True)


def _hold_registry() -> ExperimentRegistry:
    registry = ExperimentRegistry()
    registry.register(ExperimentSpec(
        name="hold", artefact="bench fixture", summary="gated runner",
        runner=_run_hold, result_type=HoldResult,
        report=lambda result: f"hold ok={result.ok}",
        default_grid={"wait": False},
        accepts_workers=False, accepts_cache=False))
    return registry


#: The coalescing burst: 32 distinct designs, one shared fig8 grid — the
#: shape continuous micro-batching exists for (independent single-design
#: clients whose work is one vectorized design axis).
COALESCE_CLIENTS = 32
COALESCE_GRID = {"points": 24}
MIN_COALESCE_SPEEDUP = 3.0


def _coalesce_designs(count: int = COALESCE_CLIENTS) -> list[MixerDesign]:
    return [MixerDesign().with_gain_setting(1.0 + 0.002 * index)
            for index in range(count)]


def _counting_fig8_registry(calls: Counter) -> ExperimentRegistry:
    """A registry whose fig8 counts engine executions (runner/batch calls)."""
    fig8 = default_registry().get("fig8")

    def runner(design, **kwargs):
        calls["runner"] += 1
        return fig8.runner(design, **kwargs)

    def batch_runner(designs, **kwargs):
        calls["batch"] += 1
        return fig8.batch_runner(designs, **kwargs)

    registry = ExperimentRegistry()
    registry.register(dataclasses.replace(fig8, runner=runner,
                                          batch_runner=batch_runner))
    return registry


def _coalesce_server(window_ms: float, registry: ExperimentRegistry | None
                     = None, max_coalesce: int = COALESCE_CLIENTS):
    """A 1-worker server (merging is deterministic) with caching off.

    The response cache stays off so every answer is engine work — the only
    thing separating the two servers under test is the scheduler.
    """
    service = MixerService(
        registry=registry if registry is not None else default_registry(),
        response_cache=False)
    server = create_server(service=service, job_workers=1, queue_limit=64,
                           coalesce_window_ms=window_ms,
                           max_coalesce=max_coalesce)
    return server, serve_in_thread(server)


def _fig8_burst(base_url: str, designs: list[MixerDesign]) -> list[dict]:
    bodies = [SpecRequest(experiment="fig8", design=design,
                          grid=dict(COALESCE_GRID)).to_dict()
              for design in designs]
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(
            lambda body: _post(base_url + "/v1/spec", body), bodies))


def _without_timing(payload: dict) -> dict:
    """A response payload minus its wall-clock field (all that may differ)."""
    stripped = dict(payload)
    stripped.pop("elapsed_s", None)
    return stripped


class TestCoalescing:
    def test_coalesced_burst_identical_and_faster(self, request):
        """The tentpole gate: same bytes, ≥3x the throughput.

        Both servers get the identical 32-design burst; the coalescing one
        must merge it into design-axis group calls (metrics prove it), the
        responses must match byte-for-byte, and — calibrated mode only —
        the merged burst must finish at least 3x faster.
        """
        designs = _coalesce_designs()
        on_server, on_thread = _coalesce_server(window_ms=250.0)
        off_server, off_thread = _coalesce_server(window_ms=0.0)
        try:
            on_url = "http://{}:{}".format(*on_server.server_address[:2])
            off_url = "http://{}:{}".format(*off_server.server_address[:2])
            # One warm-up request per server so first-touch costs (imports,
            # solver tables) don't land inside either timed burst.
            warm = _coalesce_designs(1)
            _fig8_burst(on_url, warm), _fig8_burst(off_url, warm)

            # Best of two per server: one stray descheduling stall in a
            # single burst must not decide a throughput ratio.
            merged_s, merged = None, None
            for _ in range(2):
                started = time.perf_counter()
                responses = _fig8_burst(on_url, designs)
                elapsed = time.perf_counter() - started
                if merged_s is None or elapsed < merged_s:
                    merged_s, merged = elapsed, responses
            solo_s, solo = None, None
            for _ in range(2):
                started = time.perf_counter()
                responses = _fig8_burst(off_url, designs)
                elapsed = time.perf_counter() - started
                if solo_s is None or elapsed < solo_s:
                    solo_s, solo = elapsed, responses

            # Byte-identity between the two schedulers, and against an
            # in-process solo submit — always asserted, smoke mode too.
            expected = _without_timing(
                MixerService(response_cache=False).submit(
                    SpecRequest(experiment="fig8", design=designs[0],
                                grid=dict(COALESCE_GRID))).to_dict())
            assert _without_timing(merged[0]) == expected
            for with_coalesce, without in zip(merged, solo):
                assert _without_timing(with_coalesce) \
                    == _without_timing(without)

            stats = _get(on_url + "/v1/metrics")["jobs"]["coalesce"]
            assert stats["enabled"] is True
            assert stats["coalesced_batches"] >= 1
            assert stats["coalesced_jobs"] >= COALESCE_CLIENTS
            assert "batch_size_le" in stats
            off_stats = _get(off_url + "/v1/metrics")["jobs"]["coalesce"]
            assert off_stats["enabled"] is False
            assert off_stats["coalesced_batches"] == 0

            if not _smoke_mode(request):
                record_comparison("serve", "coalesced/solo burst speedup",
                                  MIN_COALESCE_SPEEDUP, solo_s / merged_s)
                assert solo_s >= merged_s * MIN_COALESCE_SPEEDUP
        finally:
            for server, thread in ((on_server, on_thread),
                                   (off_server, off_thread)):
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)

    def test_identical_burst_executes_engine_once(self):
        """Singleflight gate: 16 identical requests, one engine execution."""
        calls: Counter = Counter()
        server, thread = _coalesce_server(
            window_ms=400.0, registry=_counting_fig8_registry(calls))
        try:
            base_url = "http://{}:{}".format(*server.server_address[:2])
            designs = _coalesce_designs(1) * 16
            responses = _fig8_burst(base_url, designs)
            assert calls["runner"] + calls["batch"] == 1
            payloads = [_without_timing(response) for response in responses]
            for payload in payloads[1:]:
                assert payload == payloads[0]
            stats = _get(base_url + "/v1/metrics")["jobs"]["coalesce"]
            assert stats["singleflight_hits"] == len(designs) - 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestLoadShedding:
    def test_saturated_server_sheds_429(self):
        # One worker, one queue slot: the gated blocker pins the worker,
        # one job waits, and the third submit must shed with 429.
        _HOLD.clear()
        service = MixerService(registry=_hold_registry(),
                               response_cache=False)
        server = create_server(service=service, job_workers=1, queue_limit=1)
        thread = serve_in_thread(server)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        try:
            blocker = {"request": {"experiment": "hold",
                                   "grid": {"wait": True}}}
            job = _post(base_url + "/v1/jobs", blocker)["job"]
            deadline = time.monotonic() + 30
            while _get(f"{base_url}/v1/jobs/{job['id']}")["job"]["state"] \
                    != "running":
                assert time.monotonic() < deadline
                time.sleep(0.002)
            filler = {"request": {"experiment": "hold"}}
            _post(base_url + "/v1/jobs", filler)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base_url + "/v1/jobs", filler)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            metrics = _get(base_url + "/v1/metrics")
            assert metrics["load_shed_total"] == 1
            assert metrics["jobs"]["shed"] == 1
        finally:
            _HOLD.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
