"""Benchmark: the hardened serving path under concurrent load.

Gates for the async job surface:

* **correctness under concurrency** — a burst of mixed-experiment clients
  hammering one server gets responses bit-identical to the in-process
  :meth:`MixerService.submit` call, every time (this assertion always
  runs, smoke mode included);
* **throughput** — sustained concurrent traffic on the hot (cached) path
  must not collapse: the concurrent burst finishes within a loose factor
  of the same requests issued serially (the persistent job-worker pool,
  not per-request machinery, carries the load);
* **load shedding** — a saturated 1-worker, 1-slot server answers the
  overflow submit with 429 instead of queueing unboundedly, and the
  metrics endpoint accounts for the shed.

Timing gates are skipped in smoke mode (``--benchmark-disable``, the CI
configuration); the identity and shedding assertions always run.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import pytest

from conftest import record_comparison

from repro.api import MixerService, SpecRequest, register_payload_type
from repro.api.registry import ExperimentRegistry, ExperimentSpec
from repro.serve import create_server, serve_in_thread

#: Mixed traffic: cheap scalar experiments plus a small curve sweep, so the
#: burst exercises different result schemas and payload sizes at once.
TRAFFIC = [
    ("power_budget", {}),
    ("table1", {}),
    ("tia_response", {"points": 16}),
    ("fig8", {"points": 24}),
]
CLIENTS = 8
REQUESTS_PER_CLIENT = 4
#: Concurrent burst vs the same requests serially; the server work is
#: GIL-bound JSON plus cache hits, so concurrency buys little — the gate
#: only refuses a collapse (listen-backlog SYN drops cost ~1s per retry,
#: lock convoys, per-request pool spin-up).  Loose factor + absolute slack
#: because the serial burst is tens of milliseconds on a quiet box.
MAX_CONCURRENT_SLOWDOWN = 3.0
SLOWDOWN_SLACK_S = 0.25


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def _post(url: str, payload: dict) -> dict:
    http_request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(http_request) as response:
        return json.loads(response.read().decode("utf-8"))


def _get(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def served():
    server = create_server(job_workers=4)
    thread = serve_in_thread(server)
    host, port = server.server_address[:2]
    yield server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _burst(base_url: str, workers: int) -> list[tuple[str, dict]]:
    """Fire the traffic mix from ``workers`` threads; (name, payload) each."""
    plan = [(name, SpecRequest(experiment=name, grid=dict(grid)).to_dict())
            for name, grid in TRAFFIC] * REQUESTS_PER_CLIENT

    def one(entry):
        name, body = entry
        return name, _post(base_url + "/v1/spec", body)

    if workers == 1:
        return [one(entry) for entry in plan]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(one, plan))


class TestConcurrentStress:
    def test_concurrent_burst_is_bit_identical(self, served):
        _server, base_url = served
        expected = {
            name: MixerService(response_cache=False).submit(
                SpecRequest(experiment=name, grid=dict(grid))).to_dict()
            for name, grid in TRAFFIC
        }
        for name, payload in _burst(base_url, workers=CLIENTS):
            assert payload["result"] == expected[name]["result"], name

    def test_concurrent_throughput_does_not_collapse(self, served, request):
        if _smoke_mode(request):
            pytest.skip("timing gate runs in calibrated mode only")
        _server, base_url = served
        _burst(base_url, workers=1)  # warm the response cache

        started = time.perf_counter()
        _burst(base_url, workers=1)
        serial_s = time.perf_counter() - started

        started = time.perf_counter()
        _burst(base_url, workers=CLIENTS)
        concurrent_s = time.perf_counter() - started

        record_comparison("serve", "concurrent/serial burst",
                          MAX_CONCURRENT_SLOWDOWN, concurrent_s / serial_s)
        assert concurrent_s <= \
            serial_s * MAX_CONCURRENT_SLOWDOWN + SLOWDOWN_SLACK_S

    def test_benchmark_concurrent_hot_burst(self, served, benchmark):
        """pytest-benchmark curve of the concurrent cached-request burst."""
        _server, base_url = served
        _burst(base_url, workers=1)  # warm the response cache
        results = benchmark(_burst, base_url, CLIENTS)
        assert len(results) == len(TRAFFIC) * REQUESTS_PER_CLIENT


@dataclass
class HoldResult:
    """Trivial payload for the gated shedding fixture below."""

    ok: bool


register_payload_type(HoldResult)

#: Gate the ``hold`` experiment blocks on — lets the shedding test pin a
#: worker deterministically instead of racing a real computation's runtime.
_HOLD = threading.Event()


def _run_hold(design, *, wait: bool = False) -> HoldResult:
    if wait:
        _HOLD.wait(timeout=30)
    return HoldResult(ok=True)


def _hold_registry() -> ExperimentRegistry:
    registry = ExperimentRegistry()
    registry.register(ExperimentSpec(
        name="hold", artefact="bench fixture", summary="gated runner",
        runner=_run_hold, result_type=HoldResult,
        report=lambda result: f"hold ok={result.ok}",
        default_grid={"wait": False},
        accepts_workers=False, accepts_cache=False))
    return registry


class TestLoadShedding:
    def test_saturated_server_sheds_429(self):
        # One worker, one queue slot: the gated blocker pins the worker,
        # one job waits, and the third submit must shed with 429.
        _HOLD.clear()
        service = MixerService(registry=_hold_registry(),
                               response_cache=False)
        server = create_server(service=service, job_workers=1, queue_limit=1)
        thread = serve_in_thread(server)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        try:
            blocker = {"request": {"experiment": "hold",
                                   "grid": {"wait": True}}}
            job = _post(base_url + "/v1/jobs", blocker)["job"]
            deadline = time.monotonic() + 30
            while _get(f"{base_url}/v1/jobs/{job['id']}")["job"]["state"] \
                    != "running":
                assert time.monotonic() < deadline
                time.sleep(0.002)
            filler = {"request": {"experiment": "hold"}}
            _post(base_url + "/v1/jobs", filler)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base_url + "/v1/jobs", filler)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            metrics = _get(base_url + "/v1/metrics")
            assert metrics["load_shed_total"] == 1
            assert metrics["jobs"]["shed"] == 1
        finally:
            _HOLD.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
