"""Benchmark: vectorized sweep engine vs the scalar per-point path.

The acceptance bar from the sweep-engine work: on a 500-point Fig. 8 RF
grid the vectorized :class:`~repro.sweep.runner.SweepRunner` must produce
arrays equal to the scalar accessor loop to <= 1e-9 and run at least 5x
faster.  Both paths are timed warm (mixers built, per-mode intermediates
memoized) so the comparison isolates the per-point Python overhead the
engine exists to remove, not the one-off device sizing both share.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record_comparison

from repro.core.config import MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.sweep import SweepRunner

GRID_POINTS = 500
IF_FREQUENCY = 5e6
MODES = (MixerMode.ACTIVE, MixerMode.PASSIVE)


def _grid() -> np.ndarray:
    return np.logspace(np.log10(0.3e9), np.log10(7e9), GRID_POINTS)


def _scalar_sweep(mixers: dict[MixerMode, ReconfigurableMixer],
                  frequencies: np.ndarray) -> dict[MixerMode, np.ndarray]:
    return {
        mode: np.array([mixers[mode].conversion_gain_db(f, IF_FREQUENCY)
                        for f in frequencies])
        for mode in MODES
    }


def _vectorized_sweep(runner: SweepRunner, frequencies: np.ndarray):
    return runner.run(rf_frequencies=frequencies,
                      if_frequencies=[IF_FREQUENCY], modes=MODES)


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall time (s); the minimum is the least noisy estimator."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_sweep_vectorized_fig8_grid(benchmark, design) -> None:
    """Track the vectorized Fig. 8 sweep in the perf trajectory."""
    frequencies = _grid()
    runner = SweepRunner(design, specs=("conversion_gain_db",))
    _vectorized_sweep(runner, frequencies)  # warm the mixer/intermediates
    sweep = benchmark(_vectorized_sweep, runner, frequencies)
    assert sweep.shape == (1, len(MODES), GRID_POINTS, 1)


def test_bench_sweep_speedup_and_equivalence(design) -> None:
    """The acceptance gate: <= 1e-9 agreement and >= 5x speedup, warm."""
    frequencies = _grid()
    runner = SweepRunner(design, specs=("conversion_gain_db",))
    mixers = {mode: ReconfigurableMixer(design, mode) for mode in MODES}

    # Warm both paths so sizing/bias/intermediates are paid up front.
    sweep = _vectorized_sweep(runner, frequencies)
    scalar = _scalar_sweep(mixers, frequencies)

    for mode in MODES:
        _, vectorized = sweep.curve("conversion_gain_db", "rf_frequency_hz",
                                    mode=mode)
        worst = float(np.max(np.abs(vectorized - scalar[mode])))
        assert worst <= 1e-9, f"{mode.value}: vectorized drifts by {worst}"

    scalar_time = _best_of(lambda: _scalar_sweep(mixers, frequencies))
    vector_time = _best_of(lambda: _vectorized_sweep(runner, frequencies))
    speedup = scalar_time / vector_time
    record_comparison("sweep", f"vectorized speedup ({GRID_POINTS}-pt fig8)",
                      ">= 5x", f"{speedup:.1f}x")
    assert speedup >= 5.0, (
        f"vectorized sweep only {speedup:.1f}x faster "
        f"({scalar_time * 1e3:.1f} ms scalar vs {vector_time * 1e3:.1f} ms)")
