"""Ablation benchmark — the design choices DESIGN.md calls out.

Not a paper figure: these isolate the paper's individual design decisions
(PMOS degeneration, transmission-gate load, TIA power gating) and confirm
each pulls in the direction the paper claims, plus a process-corner sweep.
"""

from __future__ import annotations

from conftest import record_comparison

from repro.experiments.ablation import run_ablation


def test_bench_ablation_design_choices(benchmark, design) -> None:
    """Run every ablation study and check the claimed directions."""
    result = benchmark(run_ablation, design)

    record_comparison("ablation", "degeneration IIP3 benefit (dB)",
                      "> 0", result.degeneration.linearity_benefit_db)
    record_comparison("ablation", "TG vs NMOS load flatness ratio",
                      "> 1", result.load_flatness.improvement_ratio)
    record_comparison("ablation", "TIA gating saving (mW)",
                      3.96, result.tia_gating.power_saving_mw)

    # Degeneration buys gm-stage linearity and costs gain (section II.B).
    assert result.degeneration.linearity_benefit_db > 1.0
    assert result.degeneration.gain_cost_db > 1.0
    # The transmission gate keeps the load resistance far flatter across the
    # 1.2 V range than a single NMOS (the abstract's headroom argument).
    assert result.load_flatness.improvement_ratio > 2.0
    # Switching the TIA off in active mode saves its full branch power.
    expected_saving = design.tia_supply_current * design.vdd * 1e3
    assert abs(result.tia_gating.power_saving_mw - expected_saving) < 1e-9
    # Corners: the mode ordering survives process variation.
    for point in result.corners:
        assert point.active_gain_db > point.passive_gain_db
        assert point.active_nf_db < point.passive_nf_db
        assert point.passive_iip3_dbm > 0.0
    assert len(result.corners) == 3
