"""Benchmark: sharded parallel sweeps and the on-disk spec cache.

Two acceptance gates from the scale-up work:

* :class:`~repro.sweep.parallel.ParallelSweepRunner` must produce
  **bit-identical** results to the single-process runner on a Monte-Carlo
  design grid, and — given real cores — cut wall-clock by >= 2x;
* a **warm** on-disk cache must skip every sizing bisection (asserted via
  the :func:`~repro.core.transconductance.sizing_solve_count`
  instrumentation) and land >= 2x under the cold run.

The timing gates are skipped in smoke mode (``--benchmark-disable``, the CI
configuration) and the parallel gate additionally requires >= 2 usable CPUs
— a single-core box can prove correctness of the sharded path but not a
wall-clock win.  The equality assertions always run, pool and all.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import record_comparison

from repro.core.transconductance import sizing_solve_count
from repro.sweep import (
    DeviceSpread,
    ParallelSweepRunner,
    SweepRunner,
    sample_design,
)

#: Monte-Carlo design-axis size for the speedup gate (>= 8 per the issue).
NUM_DESIGNS = 16
RF_GRID_POINTS = 64


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def _designs(design, count: int):
    rng = np.random.default_rng(20150901)
    return {f"mc-{i:03d}": sample_design(design, rng, DeviceSpread(),
                                         f"mc-{i:03d}")
            for i in range(count)}


def _grid() -> np.ndarray:
    return np.logspace(np.log10(0.5e9), np.log10(6e9), RF_GRID_POINTS)


def test_bench_parallel_equality(design) -> None:
    """Sharded results must match the single-process runner bit for bit."""
    designs = _designs(design, 8)
    single = SweepRunner(design).run(rf_frequencies=_grid(), designs=designs)
    sharded = ParallelSweepRunner(design, workers=4).run(
        rf_frequencies=_grid(), designs=designs)
    for spec in single.spec_names:
        np.testing.assert_array_equal(sharded.data[spec], single.data[spec])


def test_bench_parallel_speedup(design, request) -> None:
    """The >= 2x wall-clock gate for sharding the design axis."""
    if _smoke_mode(request):
        pytest.skip("timing gate skipped in benchmark smoke mode")
    cpus = _usable_cpus()
    if cpus < 2:
        pytest.skip(f"needs >= 2 usable CPUs to parallelise, have {cpus}")
    workers = min(4, cpus)
    designs = _designs(design, NUM_DESIGNS)

    start = time.perf_counter()
    single = SweepRunner(design).run(rf_frequencies=_grid(), designs=designs)
    single_time = time.perf_counter() - start

    start = time.perf_counter()
    sharded = ParallelSweepRunner(design, workers=workers).run(
        rf_frequencies=_grid(), designs=designs)
    parallel_time = time.perf_counter() - start

    for spec in single.spec_names:
        np.testing.assert_array_equal(sharded.data[spec], single.data[spec])
    speedup = single_time / parallel_time
    record_comparison(
        "parallel", f"{workers}-worker speedup ({NUM_DESIGNS}-design MC)",
        ">= 2x", f"{speedup:.1f}x")
    assert speedup >= 2.0, (
        f"sharded sweep only {speedup:.1f}x faster with {workers} workers "
        f"({single_time * 1e3:.0f} ms single vs {parallel_time * 1e3:.0f} ms)")


def test_bench_cache_warm_skips_sizing_and_speeds_up(design, tmp_path,
                                                     request) -> None:
    """Warm-cache gate: zero sizing bisections and >= 2x over the cold run."""
    designs = _designs(design, 8)

    before = sizing_solve_count()
    start = time.perf_counter()
    cold = SweepRunner(design, cache=tmp_path).run(rf_frequencies=_grid(),
                                                   designs=designs)
    cold_time = time.perf_counter() - start
    cold_solves = sizing_solve_count() - before
    assert cold_solves > 0

    before = sizing_solve_count()
    start = time.perf_counter()
    warm = SweepRunner(design, cache=tmp_path).run(rf_frequencies=_grid(),
                                                   designs=designs)
    warm_time = time.perf_counter() - start
    warm_solves = sizing_solve_count() - before

    # The headline guarantee: a warm cache performs zero sizing bisections.
    assert warm_solves == 0, f"warm run still sized {warm_solves} devices"
    for spec in cold.spec_names:
        np.testing.assert_array_equal(warm.data[spec], cold.data[spec])

    if _smoke_mode(request):
        return  # timing below is meaningless under smoke settings
    speedup = cold_time / warm_time
    record_comparison("cache", "warm/cold speedup (8-design MC)",
                      ">= 2x", f"{speedup:.1f}x")
    assert speedup >= 2.0, (
        f"warm cache only {speedup:.1f}x faster "
        f"({cold_time * 1e3:.0f} ms cold vs {warm_time * 1e3:.0f} ms warm)")
