"""Benchmark for Table I — simulation results and comparison with prior work."""

from __future__ import annotations

from conftest import record_comparison

from repro.core.config import PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.experiments.table1_comparison import TABLE_I_ROWS, run_table1


def test_bench_table1_comparison(benchmark, design) -> None:
    """Regenerate Table I and check every row of the "this work" columns."""
    result = benchmark(run_table1, design)

    for specs, targets in ((result.this_work_active, PAPER_TARGETS_ACTIVE),
                           (result.this_work_passive, PAPER_TARGETS_PASSIVE)):
        label = f"table1 ({specs.mode.value})"
        record_comparison(label, "gain (dB)", targets.conversion_gain_db,
                          specs.conversion_gain_db)
        record_comparison(label, "NF (dB)", targets.noise_figure_db,
                          specs.noise_figure_db)
        record_comparison(label, "IIP3 (dBm)", targets.iip3_dbm, specs.iip3_dbm)
        record_comparison(label, "1dB-CP (dBm)", targets.p1db_dbm, specs.p1db_dbm)
        record_comparison(label, "power (mW)", targets.power_mw, specs.power_mw)

    deviations = result.deviations_from_paper()
    for mode, rows in deviations.items():
        assert abs(rows["gain_db"]) < 1.0, mode
        assert abs(rows["nf_db"]) < 1.0, mode
        assert abs(rows["iip3_dbm"]) < 2.5, mode
        assert abs(rows["p1db_dbm"]) < 4.0, mode
        assert abs(rows["power_mw"]) < 0.5, mode

    # The table has the full set of columns and rows.
    assert len(result.columns) == 10
    for column in result.columns:
        for key in TABLE_I_ROWS:
            assert key in column

    # Comparison claims that hold in the paper's table: this work (active)
    # has the second-highest gain after [4], and the reconfigurable design's
    # passive mode is competitive on IIP3 with the dedicated passive mixers.
    assert result.highest_gain_design() == "[4]"
    gains = {str(c["design"]): c["gain_db"] for c in result.columns
             if isinstance(c["gain_db"], (int, float))}
    assert sorted(gains, key=gains.get, reverse=True)[1] == "This work (active)"
    passive_iip3 = result.this_work_passive.iip3_dbm
    for reference in ("[5]", "[6]"):
        assert passive_iip3 > result.column(reference)["iip3_dbm"] - 3.5
