"""Benchmark for equation (4) — the TIA closed-loop input impedance.

The virtual-ground claim: the TIA presents a very low impedance to the
passive mixer core, and the analytic expression agrees with an MNA circuit
simulation of the closed loop built from the library's own circuit engine.
"""

from __future__ import annotations

from conftest import record_comparison

from repro.experiments.tia_response import run_tia_response


def test_bench_tia_input_impedance(benchmark, design) -> None:
    """Evaluate equation (4) analytically and with the MNA engine."""
    result = benchmark(run_tia_response, design)

    record_comparison("eq4", "|Z_in| @100kHz (ohm)", "<< R_F (low)",
                      result.zin_at(1e5))
    record_comparison("eq4", "|Z_in| @5MHz (ohm)", "low (virtual ground)",
                      result.zin_at(5e6))
    record_comparison("eq4", "analytic vs MNA error (%)", "< 10",
                      result.worst_relative_error * 100.0)

    # Virtual ground: orders of magnitude below R_F across the IF band.
    assert result.zin_at(1e5) < design.feedback_resistance / 100.0
    assert result.zin_at(5e6) < design.feedback_resistance / 10.0
    # The impedance rises with frequency as the loop gain falls (eq. 4).
    assert result.zin_at(5e6) > result.zin_at(1e5)
    # The MNA circuit model and the analytic expression agree.
    assert result.worst_relative_error < 0.10
    # The R_F C_F pole (anti-aliasing bandwidth) sits in the tens of MHz.
    assert 5e6 < result.if_bandwidth_hz < 60e6
