"""Benchmark for Fig. 10 — two-tone IIP3 of both modes at a 2.4 GHz LO.

Paper values: IIP3 +6.57 dBm in passive mode (Fig. 10a) and -11.9 dBm in
active mode (Fig. 10b).  The measurement here is the full waveform-level
two-tone bench: nonlinear signal path, LO commutation, FFT, product
extraction and slope-line intercept fit.
"""

from __future__ import annotations

import numpy as np
from conftest import record_comparison

from repro.core.config import PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.experiments.fig10_iip3 import run_fig10


def test_bench_fig10_two_tone_iip3(benchmark, design) -> None:
    """Regenerate both panels of Fig. 10 and check the paper's shape."""
    result = benchmark.pedantic(run_fig10, args=(design,), rounds=1, iterations=1)

    record_comparison("fig10a", "passive IIP3 (dBm)",
                      PAPER_TARGETS_PASSIVE.iip3_dbm, result.passive.iip3_dbm)
    record_comparison("fig10b", "active IIP3 (dBm)",
                      PAPER_TARGETS_ACTIVE.iip3_dbm, result.active.iip3_dbm)
    record_comparison("fig10", "passive-active IIP3 gap (dB)",
                      PAPER_TARGETS_PASSIVE.iip3_dbm - PAPER_TARGETS_ACTIVE.iip3_dbm,
                      result.iip3_gap_db)

    # Absolute values within a couple of dB of the paper.
    assert abs(result.passive.iip3_dbm - PAPER_TARGETS_PASSIVE.iip3_dbm) < 2.5
    assert abs(result.active.iip3_dbm - PAPER_TARGETS_ACTIVE.iip3_dbm) < 2.5
    # The headline claim: passive mode is the high-linearity mode by >10 dB.
    assert result.iip3_gap_db > 10.0
    # The measured sweep behaves like a two-tone measurement should: the
    # fundamental follows a ~1:1 slope and the IM3 a ~3:1 slope at low power.
    for panel in (result.passive, result.active):
        p_in = panel.input_powers_dbm
        low = slice(0, max(3, len(p_in) // 3))
        fundamental_slope = np.polyfit(p_in[low], panel.fundamental_dbm[low], 1)[0]
        im3_slope = np.polyfit(p_in[low], panel.im3_dbm[low], 1)[0]
        assert 0.9 < fundamental_slope < 1.1
        assert 2.5 < im3_slope < 3.5
    # Measured and analytic intercepts agree (cross-validation of the model).
    assert abs(result.passive.iip3_dbm - result.passive.analytic_iip3_dbm) < 2.0
    assert abs(result.active.iip3_dbm - result.active.analytic_iip3_dbm) < 2.0
