"""Benchmark: the corner-aware yield optimiser (repro.optimize).

The acceptance gates of the yield-search work:

* a search over a >= 64-design population (16 candidates x 4 corners per
  iteration) returns the **same best-design fingerprint for any worker
  count** — the sharded sweep engine must not change the answer;
* once the on-disk spec cache is warm, a repeat of the same search performs
  **zero sizing bisections** (asserted via
  :func:`~repro.core.transconductance.sizing_solve_count`) and returns the
  bit-identical result — iterations are pure array maths;
* given real timing (not smoke mode), the warm re-run lands >= 1.5x under
  the cold run.

The equality and zero-bisection assertions always run; the wall-clock gate
is skipped in smoke mode (``--benchmark-disable``, the CI configuration).
"""

from __future__ import annotations

import time

from conftest import record_comparison

from repro.api import encode
from repro.core.config import MixerMode
from repro.core.transconductance import sizing_solve_count
from repro.optimize import default_targets, run_yield_opt

#: 16 candidates x 4 corners = 64 design records per iteration, the
#: acceptance bar's population floor.  Active-mode-only targets (derived
#: from the canonical default set) halve the per-record sweep cost without
#: changing what the gates prove.
POPULATION = 16
NUM_SAMPLES = 4
ITERATIONS = 2
TARGETS = [target.to_wire() for target in default_targets()
           if target.mode is MixerMode.ACTIVE]
SEARCH = dict(population=POPULATION, iterations=ITERATIONS,
              num_samples=NUM_SAMPLES, targets=TARGETS)


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def test_bench_optimize_worker_equality() -> None:
    """Any worker count must return the identical search answer."""
    single = run_yield_opt(**SEARCH)
    assert POPULATION * NUM_SAMPLES >= 64
    sharded = run_yield_opt(workers=4, **SEARCH)
    assert sharded.best_fingerprint() == single.best_fingerprint()
    assert encode(sharded) == encode(single)
    record_comparison("yield_opt", "4-worker best fingerprint",
                      "identical", "identical")


def test_bench_optimize_warm_cache_zero_bisections(tmp_path,
                                                   request) -> None:
    """Warm-cache gate: a repeated search solves no device sizings at all."""
    before = sizing_solve_count()
    start = time.perf_counter()
    cold = run_yield_opt(cache=str(tmp_path), **SEARCH)
    cold_time = time.perf_counter() - start
    cold_solves = sizing_solve_count() - before
    assert cold_solves > 0

    before = sizing_solve_count()
    start = time.perf_counter()
    warm = run_yield_opt(cache=str(tmp_path), **SEARCH)
    warm_time = time.perf_counter() - start
    warm_solves = sizing_solve_count() - before

    # The headline guarantee: iterations are array maths once the cache
    # holds every candidate corner's sizing/bias solution.
    assert warm_solves == 0, f"warm search still sized {warm_solves} devices"
    assert encode(warm) == encode(cold)
    record_comparison("yield_opt", "warm-search sizing bisections",
                      "0", str(warm_solves))

    if _smoke_mode(request):
        return  # timing below is meaningless under smoke settings
    speedup = cold_time / warm_time
    record_comparison("yield_opt", "warm/cold search speedup",
                      ">= 1.5x", f"{speedup:.1f}x")
    assert speedup >= 1.5, (
        f"warm search only {speedup:.1f}x faster "
        f"({cold_time * 1e3:.0f} ms cold vs {warm_time * 1e3:.0f} ms warm)")


def test_bench_optimize_improves_yield() -> None:
    """The search must never lose the incumbent — and should gain yield."""
    result = run_yield_opt(**SEARCH)
    assert result.best_yield >= result.baseline_yield
    record_comparison("yield_opt", "baseline -> best yield",
                      "monotone", f"{result.baseline_yield:.2f} -> "
                      f"{result.best_yield:.2f}")


def test_bench_optimize_warm_search_timing(benchmark, tmp_path) -> None:
    """Calibrated timing of a warm search (the perf-trajectory datapoint)."""
    small = dict(population=4, iterations=2, num_samples=4, targets=TARGETS)
    run_yield_opt(cache=str(tmp_path), **small)  # warm the cache
    result = benchmark(lambda: run_yield_opt(cache=str(tmp_path), **small))
    assert result.best_yield >= result.baseline_yield
