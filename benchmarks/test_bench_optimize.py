"""Benchmark: the corner-aware yield optimiser (repro.optimize).

The acceptance gates of the yield-search work:

* a search over a >= 64-design population (16 candidates x 4 corners per
  iteration) returns the **same best-design fingerprint for any worker
  count** — the sharded sweep engine must not change the answer;
* once the on-disk spec cache is warm, a repeat of the same search performs
  **zero sizing bisections** (asserted via
  :func:`~repro.core.transconductance.sizing_solve_count`) and returns the
  bit-identical result — iterations are pure array maths;
* given real timing (not smoke mode), the warm re-run lands >= 1.5x under
  the cold run.

The multi-objective mode carries the same gates: the Pareto front (design
fingerprints, objective vectors, order) must be bit-identical across
worker counts, a warm repeat must solve zero sizings, and the CMA proposal
strategy must reach a fixed target yield in fewer generations than the
shrinking-span baseline on a benched stretch scenario.

The equality and zero-bisection assertions always run; the wall-clock gate
is skipped in smoke mode (``--benchmark-disable``, the CI configuration).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import record_comparison

from repro.api import encode
from repro.core.config import MixerMode
from repro.core.transconductance import sizing_solve_count
from repro.optimize import default_targets, run_pareto_opt, run_yield_opt

#: 16 candidates x 4 corners = 64 design records per iteration, the
#: acceptance bar's population floor.  Active-mode-only targets (derived
#: from the canonical default set) halve the per-record sweep cost without
#: changing what the gates prove.
POPULATION = 16
NUM_SAMPLES = 4
ITERATIONS = 2
TARGETS = [target.to_wire() for target in default_targets()
           if target.mode is MixerMode.ACTIVE]
SEARCH = dict(population=POPULATION, iterations=ITERATIONS,
              num_samples=NUM_SAMPLES, targets=TARGETS)


def _smoke_mode(request) -> bool:
    return bool(request.config.getoption("--benchmark-disable"))


def test_bench_optimize_worker_equality() -> None:
    """Any worker count must return the identical search answer."""
    single = run_yield_opt(**SEARCH)
    assert POPULATION * NUM_SAMPLES >= 64
    sharded = run_yield_opt(workers=4, **SEARCH)
    assert sharded.best_fingerprint() == single.best_fingerprint()
    assert encode(sharded) == encode(single)
    record_comparison("yield_opt", "4-worker best fingerprint",
                      "identical", "identical")


def test_bench_optimize_warm_cache_zero_bisections(tmp_path,
                                                   request) -> None:
    """Warm-cache gate: a repeated search solves no device sizings at all."""
    before = sizing_solve_count()
    start = time.perf_counter()
    cold = run_yield_opt(cache=str(tmp_path), **SEARCH)
    cold_time = time.perf_counter() - start
    cold_solves = sizing_solve_count() - before
    assert cold_solves > 0

    before = sizing_solve_count()
    start = time.perf_counter()
    warm = run_yield_opt(cache=str(tmp_path), **SEARCH)
    warm_time = time.perf_counter() - start
    warm_solves = sizing_solve_count() - before

    # The headline guarantee: iterations are array maths once the cache
    # holds every candidate corner's sizing/bias solution.
    assert warm_solves == 0, f"warm search still sized {warm_solves} devices"
    assert encode(warm) == encode(cold)
    record_comparison("yield_opt", "warm-search sizing bisections",
                      "0", str(warm_solves))

    if _smoke_mode(request):
        return  # timing below is meaningless under smoke settings
    speedup = cold_time / warm_time
    record_comparison("yield_opt", "warm/cold search speedup",
                      ">= 1.5x", f"{speedup:.1f}x")
    assert speedup >= 1.5, (
        f"warm search only {speedup:.1f}x faster "
        f"({cold_time * 1e3:.0f} ms cold vs {warm_time * 1e3:.0f} ms warm)")


def test_bench_optimize_improves_yield() -> None:
    """The search must never lose the incumbent — and should gain yield."""
    result = run_yield_opt(**SEARCH)
    assert result.best_yield >= result.baseline_yield
    record_comparison("yield_opt", "baseline -> best yield",
                      "monotone", f"{result.baseline_yield:.2f} -> "
                      f"{result.best_yield:.2f}")


def test_bench_optimize_warm_search_timing(benchmark, tmp_path) -> None:
    """Calibrated timing of a warm search (the perf-trajectory datapoint)."""
    small = dict(population=4, iterations=2, num_samples=4, targets=TARGETS)
    run_yield_opt(cache=str(tmp_path), **small)  # warm the cache
    result = benchmark(lambda: run_yield_opt(cache=str(tmp_path), **small))
    assert result.best_yield >= result.baseline_yield


# -- multi-objective (Pareto) gates -------------------------------------------


def test_bench_pareto_worker_front_equality() -> None:
    """The Pareto front must be bit-identical for any worker count.

    Same population floor as the scalar gate (16 candidates x 4 corners =
    64 design records per generation), compared point by point: design
    fingerprints, raw objective vectors, and front order.
    """
    single = run_pareto_opt(**SEARCH)
    assert POPULATION * NUM_SAMPLES >= 64
    sharded = run_pareto_opt(workers=4, **SEARCH)
    assert sharded.front_fingerprints() == single.front_fingerprints()
    assert np.array_equal(sharded.front.objective_matrix(),
                          single.front.objective_matrix())
    assert sharded.front_history == single.front_history
    assert encode(sharded) == encode(single)
    record_comparison("yield_pareto", "4-worker Pareto front",
                      "identical", "identical")


def test_bench_pareto_warm_cache_zero_bisections(tmp_path) -> None:
    """A repeated Pareto search on a warm cache solves no sizings at all."""
    cold = run_pareto_opt(cache=str(tmp_path), **SEARCH)
    before = sizing_solve_count()
    warm = run_pareto_opt(cache=str(tmp_path), **SEARCH)
    warm_solves = sizing_solve_count() - before
    assert warm_solves == 0, f"warm search still sized {warm_solves} devices"
    assert encode(warm) == encode(cold)
    record_comparison("yield_pareto", "warm-search sizing bisections",
                      "0", str(warm_solves))


#: Stretch scenario for the strategy race: the feasible region (>= 30 dB
#: active gain at <= 10 mW) sits outside the reach of a 0.02-span random
#: walk whose steps halve every generation, but inside the reach of a
#: covariance-adapted sampler that grows its step size while progress
#: holds.  Analytic specs only, so the race stays cheap.
STRETCH_TARGETS = [["conversion_gain_db", "active", 30.0, None],
                   ["power_mw", "active", None, 10.0]]
STRETCH = dict(population=POPULATION, iterations=8, num_samples=NUM_SAMPLES,
               targets=STRETCH_TARGETS, search_span=0.02)
TARGET_YIELD = 0.5


def _generations_to(history, target: float) -> int:
    """1-based generation index reaching ``target`` (inf when never)."""
    for index, value in enumerate(history):
        if value >= target:
            return index + 1
    return len(history) + 1


def test_bench_cma_beats_shrinking_span() -> None:
    """CMA must reach the target yield in fewer generations than the
    shrinking-span baseline on the benched stretch population."""
    baseline = run_yield_opt(strategy="shrinking_span", **STRETCH)
    cma = run_yield_opt(strategy="cma", **STRETCH)
    baseline_gens = _generations_to(baseline.history, TARGET_YIELD)
    cma_gens = _generations_to(cma.history, TARGET_YIELD)
    assert cma_gens <= STRETCH["iterations"], (
        f"CMA never reached yield {TARGET_YIELD} "
        f"(history {list(cma.history)})")
    assert cma_gens < baseline_gens, (
        f"CMA took {cma_gens} generations vs baseline {baseline_gens} "
        f"(histories {list(cma.history)} vs {list(baseline.history)})")
    baseline_text = (str(baseline_gens)
                     if baseline_gens <= STRETCH["iterations"] else "never")
    record_comparison("yield_opt", f"generations to {TARGET_YIELD} yield "
                      "(cma vs shrinking_span)",
                      "fewer", f"{cma_gens} vs {baseline_text}")


def test_bench_pareto_warm_search_timing(benchmark, tmp_path) -> None:
    """Calibrated timing of a warm Pareto search (perf-trajectory point)."""
    small = dict(population=4, iterations=2, num_samples=4, targets=TARGETS)
    run_pareto_opt(cache=str(tmp_path), **small)  # warm the cache
    result = benchmark(lambda: run_pareto_opt(cache=str(tmp_path), **small))
    assert result.front.size >= 1
