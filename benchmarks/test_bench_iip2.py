"""Benchmark for the section-IV IIP2 claim: > 65 dBm in both modes."""

from __future__ import annotations

from conftest import record_comparison

from repro.experiments.iip2 import PAPER_IIP2_FLOOR_DBM, run_iip2


def test_bench_iip2_both_modes(benchmark, design) -> None:
    """Measure IIP2 of both modes with the two-tone waveform bench."""
    result = benchmark.pedantic(run_iip2, args=(design,), rounds=1, iterations=1)

    record_comparison("iip2", "active IIP2 (dBm)", "> 65",
                      result.active.measured_iip2_dbm)
    record_comparison("iip2", "passive IIP2 (dBm)", "> 65",
                      result.passive.measured_iip2_dbm)

    assert result.active.measured_iip2_dbm > PAPER_IIP2_FLOOR_DBM
    assert result.passive.measured_iip2_dbm > PAPER_IIP2_FLOOR_DBM
    assert result.both_meet_paper_floor
    # The measured value should not exceed the mismatch-limited analytic
    # bound by more than measurement slop (it is the same mechanism).
    assert result.active.measured_iip2_dbm < result.active.analytic_iip2_dbm + 3.0
    assert result.passive.measured_iip2_dbm < result.passive.analytic_iip2_dbm + 3.0
