"""Benchmark for Fig. 9 — NF and conversion gain vs IF frequency at 2.45 GHz.

Paper values at 5 MHz IF: NF 7.6 dB (active) / 10.2 dB (passive), gain
29.2 dB / 25.5 dB; passive-mode flicker corner below 100 kHz.
"""

from __future__ import annotations

from conftest import record_comparison

from repro.core.config import MixerMode, PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.experiments.fig9_nf_vs_if import run_fig9


def test_bench_fig9_nf_and_gain_vs_if(benchmark, design) -> None:
    """Regenerate the Fig. 9 sweep and check the paper's shape."""
    result = benchmark(run_fig9, design)

    active_nf = result.value_at(MixerMode.ACTIVE, "nf", 5e6)
    passive_nf = result.value_at(MixerMode.PASSIVE, "nf", 5e6)
    active_gain = result.value_at(MixerMode.ACTIVE, "gain", 5e6)
    passive_gain = result.value_at(MixerMode.PASSIVE, "gain", 5e6)
    passive_corner = result.flicker_corner_hz(MixerMode.PASSIVE)
    active_corner = result.flicker_corner_hz(MixerMode.ACTIVE)

    record_comparison("fig9", "active NF @5MHz (dB)",
                      PAPER_TARGETS_ACTIVE.noise_figure_db, active_nf)
    record_comparison("fig9", "passive NF @5MHz (dB)",
                      PAPER_TARGETS_PASSIVE.noise_figure_db, passive_nf)
    record_comparison("fig9", "active gain @5MHz (dB)",
                      PAPER_TARGETS_ACTIVE.conversion_gain_db, active_gain)
    record_comparison("fig9", "passive gain @5MHz (dB)",
                      PAPER_TARGETS_PASSIVE.conversion_gain_db, passive_gain)
    record_comparison("fig9", "passive flicker corner (kHz)",
                      "< 100", passive_corner / 1e3)

    assert abs(active_nf - PAPER_TARGETS_ACTIVE.noise_figure_db) < 1.0
    assert abs(passive_nf - PAPER_TARGETS_PASSIVE.noise_figure_db) < 1.0
    # Active mode is the low-noise mode.
    assert active_nf < passive_nf - 1.0
    # The paper's flicker claim: passive corner below 100 kHz, and clearly
    # better (lower) than the active-mode corner.
    assert passive_corner < 100e3
    assert passive_corner < active_corner
    # NF rises towards low IF (the 1/f region is visible in the sweep).
    assert result.value_at(MixerMode.ACTIVE, "nf", 2e4) > active_nf + 3.0
    # Gain rolls off at high IF (the R_F C_F / C_c pole).
    assert result.value_at(MixerMode.PASSIVE, "gain", 8e7) < passive_gain - 3.0
