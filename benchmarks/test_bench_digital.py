"""Benchmark: batched digital-IF quantization vs the per-width scalar loop.

The acceptance bar from the digital-backend work: on the canonical ADC
bit-width grid the broadcast quantizer path (one
:func:`~repro.digital.engine.evaluate_digital` pass over every width) must
be **bit-identical** to evaluating each width alone and at least **3x**
faster than that scalar loop, and a warm digital cache must serve a re-run
with **zero quantization passes** (the counterpart of the waveform cache's
zero-FFT bar).

Both sides are timed on the same pre-tapped analog block (mixer built,
sizing solved, waveform evaluated), so the comparison isolates what the
vectorized backend actually changes: the broadcast quantize/mix/CIC over
the bits axis and the NCO/LO/float-reference work shared across widths.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record_comparison

from repro.core.config import MixerMode
from repro.digital import (
    DigitalIfRunner,
    digital_if_plan,
    digital_pass_count,
    evaluate_digital,
)

MODES = (MixerMode.ACTIVE, MixerMode.PASSIVE)


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall time (s); the minimum is the least noisy estimator."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_digital_if_grid(benchmark, design) -> None:
    """Track the full digital_if cell evaluation in the trajectory."""
    plan = digital_if_plan()
    runner = DigitalIfRunner(design)
    runner.run(plan, modes=MODES)  # warm the mixer/sizing/tap memoization
    result = benchmark(runner.run, plan, modes=MODES)
    assert result.shape == (1, len(MODES), len(plan.adc_bits))


def test_bench_digital_speedup_and_bit_identity(design) -> None:
    """The acceptance gate: rows bit-identical and the batch >= 3x faster."""
    plan = digital_if_plan()
    runner = DigitalIfRunner(design)
    block = runner.waveform.time_domain(plan.stimulus, MixerMode.ACTIVE)

    def scalar_loop():
        return [evaluate_digital(plan.with_adc_bits((width,)), block)
                for width in plan.adc_bits]

    batched = evaluate_digital(plan, block)
    for row, solo in enumerate(scalar_loop()):
        for measure in plan.measures:
            assert np.array_equal(batched[measure][row:row + 1],
                                  solo[measure]), (
                f"{measure} differs between the batched pass and the "
                f"{plan.adc_bits[row]}-bit solo evaluation")

    scalar_time = _best_of(scalar_loop)
    batched_time = _best_of(lambda: evaluate_digital(plan, block))
    speedup = scalar_time / batched_time
    record_comparison("digital", "batched speedup (ADC bit-width grid)",
                      ">= 3x", f"{speedup:.1f}x")
    assert speedup >= 3.0, (
        f"batched quantization only {speedup:.1f}x faster "
        f"({scalar_time * 1e3:.2f} ms scalar vs "
        f"{batched_time * 1e3:.2f} ms batched)")


def test_bench_digital_warm_cache_zero_passes(design, tmp_path) -> None:
    """A warm digital cache must serve re-runs without re-quantizing."""
    plan = digital_if_plan()
    cold = DigitalIfRunner(design, cache=str(tmp_path))
    first = cold.run(plan, modes=MODES)
    assert cold.cache.stores == len(MODES)

    before = digital_pass_count()
    warm = DigitalIfRunner(design, cache=str(tmp_path))
    second = warm.run(plan, modes=MODES)
    assert digital_pass_count() == before, \
        "warm-cache digital run performed quantization passes"
    assert warm.cache.hits == len(MODES)
    for measure in plan.measures:
        assert np.array_equal(first.data[measure], second.data[measure])
