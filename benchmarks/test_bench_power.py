"""Benchmark for the power-consumption text claims.

Paper: 9.36 mW in active mode, 9.24 mW in passive mode at 1.2 V; the TIA
draws 3.3 mA and is powered down in active mode to save power.
"""

from __future__ import annotations

from conftest import record_comparison

from repro.core.config import PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.experiments.power_budget import run_power_budget


def test_bench_power_budget(benchmark, design) -> None:
    """Regenerate the per-mode power budget."""
    result = benchmark(run_power_budget, design)

    record_comparison("power", "active total (mW)",
                      PAPER_TARGETS_ACTIVE.power_mw, result.active_total_mw)
    record_comparison("power", "passive total (mW)",
                      PAPER_TARGETS_PASSIVE.power_mw, result.passive_total_mw)
    record_comparison("power", "TIA branch (mW)", 3.3 * 1.2, result.tia_power_mw)

    deltas = result.delta_vs_paper_mw()
    assert abs(deltas["active"]) < 0.2
    assert abs(deltas["passive"]) < 0.2
    # The paper's TIA current (3.3 mA at 1.2 V).
    assert abs(result.tia_power_mw - 3.3 * 1.2) < 1e-9
    # Active mode spends its budget on the Gilbert core instead of the TIA;
    # the two modes end up within ~0.2 mW of each other (9.36 vs 9.24).
    assert result.active.tia_a == 0.0
    assert result.passive.gilbert_core_a == 0.0
    assert abs(result.active_total_mw - result.passive_total_mw) < 0.5
