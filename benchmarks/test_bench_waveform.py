"""Benchmark: batched waveform engine vs the scalar measurement loop.

The acceptance bar from the waveform-engine work: on the Fig. 10 input
power grid the batched :class:`~repro.waveform.engine.WaveformRunner` path
must agree with the point-by-point bench on every measure and run at least
**3x** faster than the scalar loop (one device evaluation + one Spectrum
per power, the pre-engine measurement path), and a warm waveform cache
must serve a re-run with **zero FFT evaluations**.

Both sides are timed warm (mixer built, sizing/bias solved, imports paid)
so the comparison isolates what the engine actually changes: the stacked
time-domain evaluation, the batched FFT, the hoisted stimulus/LO
waveforms, and the coherence-aware periodic fast path.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record_comparison

from repro.core.config import MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.rf.signal import TwoToneSource
from repro.rf.twotone import measure_two_tone
from repro.waveform import (
    WaveformRunner,
    two_tone_plan,
    waveform_fft_count,
)

SAMPLE_RATE = 10.24e9
NUM_SAMPLES = 10240
LO = 2.4e9
TONE_1 = 2.405e9
TONE_2 = 2.407e9
#: The Fig. 10 default input-power grid (13 points).
POWERS = tuple(np.arange(-45.0, -19.0, 2.0))
MODES = (MixerMode.PASSIVE, MixerMode.ACTIVE)

#: The engine's periodic fast path evaluates the same model as the scalar
#: prefix device through a steady-state filter; the two implementations
#: agree far below measurement resolution but not to the last bit, so the
#: cross-implementation comparison uses this tolerance (the *scalar/vector*
#: equivalence proper — same device, point vs batched — is pinned to 1e-9
#: in tests/test_waveform_engine.py).
CROSS_IMPL_TOLERANCE_DB = 1e-5


def _plan():
    return two_tone_plan(TONE_1, TONE_2, POWERS, SAMPLE_RATE, NUM_SAMPLES,
                         lo_frequency=LO)


def _scalar_loop(devices) -> dict[MixerMode, dict[str, np.ndarray]]:
    """The pre-engine path: one measurement (device + FFT) per power."""
    results: dict[MixerMode, dict[str, np.ndarray]] = {}
    source = TwoToneSource(TONE_1, TONE_2, POWERS[0])
    for mode, device in devices.items():
        sweep = [measure_two_tone(device, source.with_power(float(power)),
                                  SAMPLE_RATE, NUM_SAMPLES, lo_frequency=LO)
                 for power in POWERS]
        results[mode] = {
            "fundamental_dbm": np.array([r.fundamental_output_dbm
                                         for r in sweep]),
            "im3_dbm": np.array([r.im3_output_dbm for r in sweep]),
            "im2_dbm": np.array([r.im2_output_dbm for r in sweep]),
        }
    return results


def _best_of(callable_, repeats: int = 5) -> float:
    """Best-of-N wall time (s); the minimum is the least noisy estimator."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_waveform_batched_fig10_grid(benchmark, design) -> None:
    """Track the batched Fig. 10 power-grid evaluation in the trajectory."""
    runner = WaveformRunner(design)
    plan = _plan()
    runner.run(plan, modes=MODES)  # warm the mixer/sizing solutions
    result = benchmark(runner.run, plan, modes=MODES)
    assert result.shape == (1, len(MODES), len(POWERS))


def test_bench_waveform_speedup_and_agreement(design) -> None:
    """The acceptance gate: measures agree and the engine is >= 3x faster."""
    plan = _plan()
    runner = WaveformRunner(design)
    devices = {}
    for mode in MODES:
        mixer = ReconfigurableMixer(design, mode)
        devices[mode] = mixer.waveform_device(SAMPLE_RATE, lo_frequency=LO,
                                              rf_band_frequency=TONE_1)

    # Warm both paths so device sizing and imports are paid up front.
    batched = runner.run(plan, modes=MODES)
    scalar = _scalar_loop(devices)

    for mode in MODES:
        for measure in plan.measures:
            worst = float(np.max(np.abs(
                batched.values(measure, mode=mode).ravel()
                - scalar[mode][measure])))
            assert worst <= CROSS_IMPL_TOLERANCE_DB, (
                f"{mode.value} {measure} differs by {worst} dB between the "
                "batched engine and the scalar loop")

    scalar_time = _best_of(lambda: _scalar_loop(devices))
    batched_time = _best_of(lambda: runner.run(plan, modes=MODES))
    speedup = scalar_time / batched_time
    record_comparison("waveform", "batched speedup (fig10 power grid)",
                      ">= 3x", f"{speedup:.1f}x")
    assert speedup >= 3.0, (
        f"batched waveform engine only {speedup:.1f}x faster "
        f"({scalar_time * 1e3:.1f} ms scalar vs "
        f"{batched_time * 1e3:.1f} ms batched)")


def test_bench_waveform_warm_cache_zero_fft(design, tmp_path) -> None:
    """A warm waveform cache must serve re-runs without a single FFT."""
    plan = _plan()
    cold = WaveformRunner(design, cache=str(tmp_path))
    first = cold.run(plan, modes=MODES)
    assert cold.cache.stores == len(MODES)

    before = waveform_fft_count()
    warm = WaveformRunner(design, cache=str(tmp_path))
    second = warm.run(plan, modes=MODES)
    assert waveform_fft_count() == before, \
        "warm-cache waveform run performed FFT evaluations"
    assert warm.cache.hits == len(MODES)
    for measure in plan.measures:
        assert np.array_equal(first.data[measure], second.data[measure])
