"""Benchmark for Fig. 8 — conversion gain vs RF frequency, both modes.

Paper values: peak/in-band conversion gain 29.2 dB (active) and 25.5 dB
(passive); -3 dB RF bands of 1-5.5 GHz and 0.5-5.1 GHz.
"""

from __future__ import annotations

from conftest import record_comparison

from repro.core.config import MixerMode, PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE
from repro.experiments.fig8_gain_vs_rf import run_fig8


def test_bench_fig8_conversion_gain_vs_rf(benchmark, design) -> None:
    """Regenerate the Fig. 8 sweep and check the paper's shape."""
    result = benchmark(run_fig8, design)

    active_gain = result.gain_at(MixerMode.ACTIVE, 2.45e9)
    passive_gain = result.gain_at(MixerMode.PASSIVE, 2.45e9)
    record_comparison("fig8", "active gain @2.45GHz (dB)",
                      PAPER_TARGETS_ACTIVE.conversion_gain_db, active_gain)
    record_comparison("fig8", "passive gain @2.45GHz (dB)",
                      PAPER_TARGETS_PASSIVE.conversion_gain_db, passive_gain)

    active_band = result.band_edges_hz(MixerMode.ACTIVE)
    passive_band = result.band_edges_hz(MixerMode.PASSIVE)
    record_comparison("fig8", "active -3dB band (GHz)",
                      f"{PAPER_TARGETS_ACTIVE.band_low_ghz}-"
                      f"{PAPER_TARGETS_ACTIVE.band_high_ghz}",
                      f"{active_band[0] / 1e9:.2f}-{active_band[1] / 1e9:.2f}")
    record_comparison("fig8", "passive -3dB band (GHz)",
                      f"{PAPER_TARGETS_PASSIVE.band_low_ghz}-"
                      f"{PAPER_TARGETS_PASSIVE.band_high_ghz}",
                      f"{passive_band[0] / 1e9:.2f}-{passive_band[1] / 1e9:.2f}")

    # Shape assertions: who wins and by roughly what factor.
    assert abs(active_gain - PAPER_TARGETS_ACTIVE.conversion_gain_db) < 1.0
    assert abs(passive_gain - PAPER_TARGETS_PASSIVE.conversion_gain_db) < 1.0
    assert active_gain > passive_gain + 2.0
    # Band edges within ~25 % of the paper's.
    assert abs(active_band[0] - 1.0e9) < 0.3e9
    assert abs(active_band[1] - 5.5e9) < 1.4e9
    assert abs(passive_band[0] - 0.5e9) < 0.2e9
    assert abs(passive_band[1] - 5.1e9) < 1.3e9
    # Passive mode reaches lower in frequency than active (paper: 0.5 vs 1 GHz).
    assert passive_band[0] < active_band[0]
